"""The asyncio job server: bounded priority queue, coalescing, workers.

Request lifecycle
-----------------

``submit(kind, params, priority)`` resolves the request to its
content-addressed key (:func:`repro.service.jobs.resolve_job`) and then
dedupes **twice** before any work is queued:

1. **in-flight coalescing** — an identical request already queued or
   running returns that job; N concurrent submits await one computation
   (counter ``service.coalesced``);
2. **at-rest hit** — a completed result stored behind the same key in the
   artifact cache's ``service`` kind (in-process LRU + the shared
   persistent tier, so server restarts and other hosts sharing a cache
   directory are covered) materializes a done job without touching the
   queue (counter ``service.result_hits``).

Everything else enters a bounded :class:`asyncio.PriorityQueue` (higher
``priority`` runs earlier; FIFO within a priority level; a full queue
rejects the submit — backpressure instead of unbounded memory) and is
picked up by one of ``workers`` async consumers.

Execution reuses :mod:`repro.parallel`'s degradation semantics: jobs run
in a :class:`~concurrent.futures.ProcessPoolExecutor` when process pools
are allowed (:func:`repro.parallel.pool_allowed`).  A broken pool
(worker OOM-killed — ``BrokenProcessPool``) is *infrastructure*, not the
job: the failing job retries inline (never lost), the broken executor is
replaced with a fresh one for subsequent jobs, and only when no pool can
be created (denied at start, or the replacement fails) does the server
degrade to inline thread execution — each with a once-per-epoch warning
and a ``service.pool_failures`` counter.  Exceptions raised *by the job*
(including OSError subclasses) fail that job only; they never touch the
pool.  ``job_timeout`` is a hard per-job deadline: on expiry the job
fails with a labelled timeout (counter ``service.timeouts``); it is
never silently extended and never mistaken for a pool failure.

Pool workers capture their :mod:`repro.obs` spans and metric deltas
(:func:`repro.service.jobs._pool_entry`); the server merges them on
completion, so worker cache-hit counters and per-stage spans stay visible
in the server's ``--trace``/``--metrics`` view and each job's ``spans``
event streams the per-stage timings to watchers.

Durability and self-healing
---------------------------

With ``journal=`` the server keeps a **write-ahead job journal**
(:class:`repro.service.journal.JobJournal`): queued jobs are journaled as
``submitted``, workers append ``started``, and :meth:`JobServer._finish`
appends the terminal record.  On startup the journal is replayed and
every non-terminal job resubmitted (counter ``service.recovered``) —
exactly-once because jobs are content-keyed, so a job that completed
before the crash replays as an at-rest cache hit.  In-memory failures
that only mean "this server is going away" (stop, drain) are *not*
journaled, so those jobs stay replayable.

Per-job transient failures get a **retry budget**: a job whose pool
worker dies (``BrokenProcessPool``) is retried on the replaced pool up
to ``retries`` times (counter ``service.retried``) before being failed —
a job that *keeps* killing its worker (OOM) must not retry forever, and
must never retry inline where it would take the server down with it.

:meth:`JobServer.drain` is the graceful path (``repro serve`` wires it
to SIGTERM/SIGINT): new submits are rejected with a retryable
``draining`` error, running jobs get ``drain_timeout`` seconds to
finish, and whatever remains is left non-terminal in the journal for the
next start, with watchers/waiters woken by a non-durable ``draining:``
failure.  The ``health`` op reports queue depth, pool state, journal lag
and uptime — the readiness probe for orchestration and CI.

Transport: JSON lines over a unix socket (``start_unix``) or localhost
TCP (``start_tcp``); one request object per line, one response per line
(``watch`` streams multiple).  :class:`ServerThread` runs the whole
server on a background thread for tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro import cache, obs, parallel
from repro.errors import ReproError
from repro.service import jobs as jobs_mod
from repro.service.journal import JobJournal

__all__ = [
    "DrainingError",
    "Job",
    "JobServer",
    "QueueFullError",
    "ServerThread",
]

logger = logging.getLogger("repro.service")

#: Terminal job states.
_DONE_STATES = ("done", "failed")

#: Error prefix for jobs failed in-memory by a drain; replies carrying it
#: are marked retryable so clients resubmit after the restart.
_DRAIN_ERROR = "draining:"


class QueueFullError(ReproError):
    """The bounded job queue rejected a submit (backpressure)."""


class DrainingError(ReproError):
    """The server is draining and no longer accepts submits."""


class Job:
    """One deduplicated unit of work and its lifecycle record."""

    __slots__ = (
        "id", "kind", "key", "params", "priority", "state", "source",
        "created", "started", "finished", "result", "error", "coalesced",
        "events", "done_event", "journaled", "retries",
    )

    def __init__(
        self, job_id: str, kind: str, key: str, params: dict, priority: int
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.key = key
        self.params = params
        self.priority = priority
        self.state = "queued"
        self.source = "computed"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.coalesced = 0
        self.events: list[dict] = []
        self.done_event = asyncio.Event()
        self.journaled = False  # has a live `submitted` journal record
        self.retries = 0  # pool-worker deaths charged to this job

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        d: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "params": self.params,
            "priority": self.priority,
            "state": self.state,
            "source": self.source,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "coalesced": self.coalesced,
        }
        if self.error is not None:
            d["error"] = self.error
        if include_result and self.result is not None:
            d["result"] = self.result
        return d


class JobServer:
    """See the module docstring; construct, ``start()``, then serve."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 128,
        use_processes: bool = True,
        job_timeout: float | None = None,
        history: int = 1024,
        journal: str | JobJournal | None = None,
        retries: int = 2,
        drain_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ReproError("need at least one worker")
        if queue_size < 1:
            raise ReproError("queue_size must be positive")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        self.workers = workers
        self.queue_size = queue_size
        self.use_processes = use_processes and parallel.pool_allowed()
        self.job_timeout = job_timeout
        self.history = history
        self.retries = retries
        self.drain_timeout = drain_timeout
        self.started_at: float | None = None
        self.counters: dict[str, int] = {
            "submitted": 0,
            "computed": 0,
            "coalesced": 0,
            "result_hits": 0,
            "failed": 0,
            "rejected": 0,
            "timeouts": 0,
            "pool_failures": 0,
            "retried": 0,
            "recovered": 0,
            "drained": 0,
        }
        self._journal_spec = journal
        self._journal: JobJournal | None = None
        self._queue: asyncio.PriorityQueue | None = None
        self._inflight: dict[str, Job] = {}
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []  # insertion order, for history trim
        self._worker_tasks: list[asyncio.Task] = []
        self._pool: ProcessPoolExecutor | None = None
        self._endpoints: list[asyncio.AbstractServer] = []
        self._conns: set[asyncio.StreamWriter] = set()
        self._seq = itertools.count(1)
        self._stopped: asyncio.Event | None = None
        self._started = False
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and workers, replay the journal, maybe pool."""
        if self._started:
            return
        self._queue = asyncio.PriorityQueue(maxsize=self.queue_size)
        self._stopped = asyncio.Event()
        if self.use_processes:
            try:
                self._pool = self._new_pool()
            except (OSError, PermissionError) as exc:
                self._degrade_pool(exc)
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-svc-worker-{i}")
            for i in range(self.workers)
        ]
        self._started = True
        self._draining = False
        self.started_at = time.time()
        obs.inc("service.starts")
        if self._journal_spec is not None:
            await self._open_and_replay_journal()

    def _new_pool(self) -> ProcessPoolExecutor:
        """Pool factory; tests substitute thread pools here."""
        return ProcessPoolExecutor(max_workers=self.workers)

    async def _open_and_replay_journal(self) -> None:
        """Open the journal and resubmit every non-terminal job.

        Replay is crash-safe and exactly-once: the journal's open()
        truncates corruption and compacts to the live set, and replayed
        jobs are content-keyed — whatever already completed (even with
        its terminal record lost) comes back as an at-rest cache hit.
        """
        spec = self._journal_spec
        journal = spec if isinstance(spec, JobJournal) else JobJournal(str(spec))
        loop = asyncio.get_running_loop()
        replayed = await loop.run_in_executor(None, journal.open)
        self._journal = journal
        for rec in replayed:
            try:
                await self.submit(
                    rec["kind"],
                    rec["params"],
                    priority=int(rec.get("priority", 0)),
                    _replayed=True,
                )
            except QueueFullError:
                # Still live in the journal: deferred to the next start.
                obs.inc("service.journal.replay_deferred")
            except ReproError as exc:
                # Unknown kind / params no longer resolvable: make the
                # record terminal so it stops replaying every start.
                obs.inc("service.journal.replay_failed")
                logger.warning(
                    "journal replay: dropping job %s (%s)",
                    rec.get("key"),
                    exc,
                )
                journal.record_failed(rec["key"], f"replay failed: {exc}")
            else:
                self.counters["recovered"] += 1
                obs.inc("service.recovered")
        if replayed:
            logger.info(
                "journal %s: resubmitted %d non-terminal job(s)",
                journal.path,
                self.counters["recovered"],
            )

    async def start_unix(self, path: str) -> None:
        """Additionally accept the JSON-lines protocol on a unix socket."""
        await self.start()
        srv = await asyncio.start_unix_server(self._handle_conn, path=path)
        self._endpoints.append(srv)

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Accept the protocol on localhost TCP; returns the bound port."""
        await self.start()
        srv = await asyncio.start_server(self._handle_conn, host=host, port=port)
        self._endpoints.append(srv)
        return srv.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (e.g. by a shutdown op)."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, cancel the workers, release the pool.

        A hard stop: in-flight jobs fail in memory with "server
        stopped", but *non-durably* — their journal records stay live,
        so a journaled server replays them on the next start.
        """
        if not self._started:
            return
        self._started = False
        for srv in self._endpoints:
            srv.close()
        for srv in self._endpoints:
            try:
                await srv.wait_closed()
            except Exception:  # pragma: no cover - best-effort close
                pass
        self._endpoints.clear()
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._worker_tasks.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        # Fail whatever is still marked in-flight so waiters wake up.
        for job in list(self._inflight.values()):
            if job.state not in _DONE_STATES:
                self._finish(job, error="server stopped", durable=False)
        if self._journal is not None:
            self._journal.close()
        # Give woken waiters/streams a few cycles to flush their final
        # messages, then close every remaining connection: a client must
        # see EOF (so its retry layer reconnects to the replacement
        # server), never a half-open socket abandoned with the loop.
        for _ in range(3):
            await asyncio.sleep(0)
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        if self._stopped is not None:
            self._stopped.set()

    async def drain(self, timeout: float | None = None) -> None:
        """Graceful shutdown: reject new submits, let running jobs
        finish within *timeout* (default ``drain_timeout``) seconds,
        journal the rest, then :meth:`stop`.

        Jobs that do not finish in time fail in memory with a retryable
        ``draining:`` error (watchers and waiters wake up and can
        resubmit after the restart) but stay live in the journal, so the
        next start replays them.
        """
        if self._draining or not self._started:
            return
        self._draining = True
        obs.inc("service.drains")
        budget = self.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        logger.info(
            "draining: %d in-flight job(s), budget %.1fs",
            len(self._inflight),
            budget,
        )
        while time.monotonic() < deadline:
            if not any(
                j.state == "running" for j in self._inflight.values()
            ):
                break
            await asyncio.sleep(0.05)
        # Whatever is left — still queued, or running past the budget —
        # is failed in memory only; its journal record stays live.
        for job in list(self._inflight.values()):
            if job.state in _DONE_STATES:
                continue
            self.counters["drained"] += 1
            obs.inc("service.drained")
            self._event(job, "drained")
            self._finish(
                job,
                error=f"{_DRAIN_ERROR} job journaled for the next start",
                durable=False,
            )
        await self.stop()

    # ------------------------------------------------------------------
    # Submission: dedup, then queue
    # ------------------------------------------------------------------
    async def submit(
        self,
        kind: str,
        params: dict | None = None,
        priority: int = 0,
        _replayed: bool = False,
    ) -> tuple[Job, str]:
        """Submit a request; returns ``(job, disposition)``.

        Disposition is ``"coalesced"`` (an identical request is already
        in flight — the caller awaits that job), ``"cached"`` (served
        from the at-rest result store) or ``"queued"``.  Raises
        :class:`QueueFullError` when the bounded queue is full,
        :class:`DrainingError` while the server is draining and
        :class:`~repro.errors.ReproError` for malformed requests.

        ``_replayed`` marks journal-replay resubmits: they are already
        in the compacted journal, so they must not be journaled again.
        """
        assert self._queue is not None, "start() first"
        if self._draining and not _replayed:
            self.counters["rejected"] += 1
            obs.inc("service.rejected")
            raise DrainingError(
                "server is draining and accepts no new submits; "
                "retry after the restart"
            )
        self.counters["submitted"] += 1
        obs.inc("service.submitted")
        key, norm = jobs_mod.resolve_job(kind, params)

        inflight = self._inflight.get(key)
        if inflight is not None:
            inflight.coalesced += 1
            self.counters["coalesced"] += 1
            obs.inc("service.coalesced")
            return inflight, "coalesced"

        # Register the job in-flight *before* the at-rest lookup: the
        # lookup runs in a thread (a large or NFS-backed cache directory
        # must not stall the event loop), and a concurrent identical
        # submit arriving during the await coalesces onto this job
        # instead of racing a second lookup/computation.
        job = self._new_job(kind, key, norm, priority)
        self._inflight[key] = job
        try:
            stored = await asyncio.get_running_loop().run_in_executor(
                None, cache.fetch_service_result, key
            )
        except Exception:  # noqa: BLE001 - the cache is an accelerator
            stored = None
        if stored is not None:
            self.counters["result_hits"] += 1
            obs.inc("service.result_hits")
            job.source = "store"
            job.result = stored
            # A replayed job resolving to a cache hit must still write
            # its terminal journal record, or it would replay (harmless
            # but noisy) on every future start.
            job.journaled = _replayed
            self._finish(job)  # releases the in-flight slot, wakes waiters
            return job, "cached"

        try:
            # Higher priority pops first; FIFO within one level.
            self._queue.put_nowait((-priority, next(self._seq), job))
        except asyncio.QueueFull:
            self.counters["rejected"] += 1
            obs.inc("service.rejected")
            if job.coalesced:
                # Coalesced submitters already hold this job: fail it so
                # their waits wake instead of hanging on a forgotten job.
                self._finish(
                    job,
                    error=f"job queue is full ({self.queue_size} pending)",
                )
            else:
                self._inflight.pop(key, None)
                self._forget(job)
            raise QueueFullError(
                f"job queue is full ({self.queue_size} pending); retry later"
            ) from None
        if self._journal is not None:
            # Replayed jobs already sit in the compacted journal file.
            job.journaled = _replayed or self._journal.record_submitted(
                key, kind, norm, priority
            )
        self._event(job, "queued", depth=self._queue.qsize())
        return job, "queued"

    def _new_job(self, kind: str, key: str, params: dict, priority: int) -> Job:
        job = Job(f"job-{next(self._seq)}", kind, key, params, priority)
        self._jobs[job.id] = job
        self._order.append(job.id)
        while len(self._order) > self.history:
            old = self._order.pop(0)
            stale = self._jobs.get(old)
            if stale is not None and stale.state in _DONE_STATES:
                del self._jobs[old]
            else:  # still running: keep it and stop trimming
                self._order.insert(0, old)
                break
        return job

    def _forget(self, job: Job) -> None:
        self._jobs.pop(job.id, None)
        try:
            self._order.remove(job.id)
        except ValueError:
            pass

    def get_job(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            _, _, job = await self._queue.get()
            try:
                if self._draining:
                    # Don't start new work during a drain; the job stays
                    # in-flight and the drain sweep journals it for the
                    # next start.
                    continue
                await self._run(job)
            finally:
                self._queue.task_done()

    def _degrade_pool(self, exc: BaseException) -> None:
        self.counters["pool_failures"] += 1
        obs.inc("service.pool_failures")
        if obs.warn_once("service.pool_degraded"):
            logger.warning(
                "process pool unavailable (%s: %s); running jobs inline — "
                "the requested worker fan-out is degraded",
                type(exc).__name__,
                exc,
            )
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _pool_failure(self, pool: ProcessPoolExecutor, exc: BaseException) -> None:
        """One job observed a broken pool: replace it, don't degrade.

        The broken executor is discarded and a fresh pool created so one
        crashed worker never permanently downgrades the server; only when
        the replacement cannot be created does the server fall back to
        inline threads.  Concurrent observers of the same broken pool all
        land here; only the one for which it is still current swaps it.
        """
        self.counters["pool_failures"] += 1
        obs.inc("service.pool_failures")
        pool.shutdown(wait=False, cancel_futures=True)
        if self._pool is not pool:
            return
        self._pool = None
        try:
            self._pool = self._new_pool()
        except (OSError, PermissionError):
            self._pool = None
        if self._pool is None:
            if obs.warn_once("service.pool_degraded"):
                logger.warning(
                    "process pool broke (%s: %s) and could not be "
                    "replaced; running jobs inline — the requested "
                    "worker fan-out is degraded",
                    type(exc).__name__,
                    exc,
                )
        elif obs.warn_once("service.pool_replaced"):
            logger.warning(
                "process pool broke (%s: %s); replaced it — the failing "
                "job retries on the fresh pool (budget %d)",
                type(exc).__name__,
                exc,
                self.retries,
            )

    async def _run(self, job: Job) -> None:
        from concurrent.futures.process import BrokenProcessPool

        job.state = "running"
        job.started = time.time()
        self._event(job, "started")
        if job.journaled and self._journal is not None:
            self._journal.record_started(job.key)
        loop = asyncio.get_running_loop()
        deadline = (
            loop.time() + self.job_timeout
            if self.job_timeout is not None
            else None
        )
        try:
            while True:
                result: dict | None = None
                pool = self._pool
                if pool is not None:
                    try:
                        result, payload = await self._await(
                            loop.run_in_executor(
                                pool,
                                jobs_mod._pool_entry,
                                (job.kind, job.params),
                            ),
                            deadline,
                        )
                        obs.merge_payload(payload)
                    except BrokenProcessPool as exc:
                        # Infrastructure, not the job: a pool worker died
                        # (OOM kill, hard crash).  Replace the pool and
                        # retry this job on it — but within a budget: a
                        # job that *keeps* killing its worker must not
                        # retry forever, and must never fall back inline
                        # where it would take the server down with it.
                        # Only BrokenProcessPool is infrastructure here:
                        # exceptions raised *by the job* — OSError
                        # subclasses included, and on Python >= 3.11 the
                        # builtin TimeoutError that asyncio raises on
                        # job_timeout IS an OSError subclass — must fall
                        # through to the handlers below, not destroy a
                        # healthy pool.
                        self._pool_failure(pool, exc)
                        job.retries += 1
                        if job.retries > self.retries:
                            self._finish(
                                job,
                                error=(
                                    f"worker died running this job "
                                    f"{job.retries} time(s); retry budget "
                                    f"({self.retries}) exhausted: "
                                    f"{type(exc).__name__}: {exc}"
                                ),
                            )
                            return
                        self.counters["retried"] += 1
                        obs.inc("service.retried")
                        self._event(job, "retried", attempt=job.retries)
                        continue  # replaced pool, or inline when none
                    except asyncio.CancelledError:
                        # A peer worker replacing the broken pool
                        # cancelled our pending future: retry on the
                        # replacement, uncharged.  A real cancellation
                        # (server stop) keeps propagating.
                        if not self._started or self._pool is pool:
                            raise
                        continue
                if result is None:
                    result = await self._await(
                        loop.run_in_executor(
                            None, jobs_mod.compute_job, job.kind, job.params
                        ),
                        deadline,
                    )
                break
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            obs.inc("service.timeouts")
            self._finish(
                job,
                error=f"job exceeded job_timeout={self.job_timeout}s",
            )
        except ReproError as exc:
            self._finish(job, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - a job must not kill the server
            self._finish(job, error=f"{type(exc).__name__}: {exc}")
        else:
            job.result = result
            self.counters["computed"] += 1
            obs.inc("service.computed")
            await loop.run_in_executor(
                None, cache.store_service_result, job.key, result
            )
            self._finish(job)

    @staticmethod
    async def _await(fut, deadline: float | None):
        if deadline is None:
            return await fut
        remaining = deadline - asyncio.get_running_loop().time()
        return await asyncio.wait_for(fut, timeout=max(0.0, remaining))

    def _finish(
        self, job: Job, error: str | None = None, durable: bool = True
    ) -> None:
        """Move *job* to a terminal state and wake its waiters.

        ``durable=False`` marks failures that only mean "this server is
        going away" (stop, drain): they are not journaled, so the job
        stays live in the journal and replays on the next start.
        """
        if job.state in _DONE_STATES:
            return
        self._inflight.pop(job.key, None)
        job.finished = time.time()
        if error is None:
            job.state = "done"
            self._event(
                job,
                "done",
                source=job.source,
                elapsed=job.finished - job.created,
            )
            if job.journaled and self._journal is not None:
                self._journal.record_done(job.key, source=job.source)
        else:
            job.state = "failed"
            job.error = error
            self.counters["failed"] += 1
            obs.inc("service.failed")
            self._event(job, "failed", error=error)
            if durable and job.journaled and self._journal is not None:
                self._journal.record_failed(job.key, error)
        job.done_event.set()

    def _event(self, job: Job, name: str, **fields: Any) -> None:
        job.events.append({"event": name, "t": time.time(), **fields})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Queue/dedup/cache counters (the ``stats`` protocol op).

        ``cache.stats()`` may scan the cache directory — blocking; the
        protocol handler runs this in an executor, direct callers
        (tests, embedding) call it from their own thread.
        """
        return {
            "counters": dict(self.counters),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_size": self.queue_size,
            "inflight": len(self._inflight),
            "workers": self.workers,
            "pool": self._pool is not None,
            "cache": cache.stats(),
        }

    def health(self) -> dict[str, Any]:
        """Cheap readiness/liveness snapshot (the ``health`` op).

        Unlike :meth:`stats` this never touches the cache directory, so
        it is safe to poll aggressively (CI readiness gates, load
        balancers): queue depth, pool state, journal lag and uptime.
        """
        h: dict[str, Any] = {
            "accepting": self._started and not self._draining,
            "draining": self._draining,
            "uptime_s": (
                time.time() - self.started_at
                if self.started_at is not None
                else 0.0
            ),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_size": self.queue_size,
            "inflight": len(self._inflight),
            "running": sum(
                1 for j in self._inflight.values() if j.state == "running"
            ),
            "workers": self.workers,
            "pool": self._pool is not None,
            "retries": self.retries,
            "counters": dict(self.counters),
        }
        if self._journal is not None:
            h["journal"] = self._journal.stats()
        return h

    # ------------------------------------------------------------------
    # JSON-lines protocol
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def send(payload: dict) -> None:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

        self._conns.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request is not an object")
                except ValueError as exc:
                    await send({"ok": False, "error": f"bad request: {exc}"})
                    continue
                try:
                    stop_after = await self._handle_op(req, send)
                except (QueueFullError, DrainingError) as exc:
                    # Transient by construction: the client may retry
                    # (after backoff / the restart) without rephrasing.
                    await send({
                        "ok": False,
                        "error": str(exc),
                        "retryable": True,
                    })
                    continue
                except ReproError as exc:
                    await send({"ok": False, "error": str(exc)})
                    continue
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _handle_op(self, req: dict, send) -> bool:
        op = req.get("op")
        if op == "ping":
            await send({"ok": True, "pong": True})
        elif op == "submit":
            job, disposition = await self.submit(
                req.get("kind", ""),
                req.get("params") or {},
                priority=int(req.get("priority", 0)),
            )
            if req.get("wait", True):
                await self._wait_done(job, req.get("timeout"))
                await send(self._job_reply(job, disposition=disposition))
            else:
                await send({
                    "ok": True,
                    "disposition": disposition,
                    "job": job.to_dict(include_result=False),
                })
        elif op in ("wait", "status"):
            job = self.get_job(str(req.get("job_id")))
            if job is None:
                await send({"ok": False, "error": "unknown job_id"})
            elif op == "wait":
                await self._wait_done(job, req.get("timeout"))
                await send(self._job_reply(job))
            else:
                await send({"ok": True, "job": job.to_dict(include_result=False)})
        elif op == "watch":
            job = self.get_job(str(req.get("job_id")))
            if job is None:
                await send({"ok": False, "error": "unknown job_id"})
            else:
                await self._stream_events(job, send)
        elif op == "jobs":
            await send({
                "ok": True,
                "jobs": [
                    self._jobs[jid].to_dict(include_result=False)
                    for jid in self._order
                    if jid in self._jobs
                ],
            })
        elif op == "stats":
            # cache.stats() scans the cache directory; keep that off the
            # event loop so a slow (NFS) store never stalls connections.
            st = await asyncio.get_running_loop().run_in_executor(
                None, self.stats
            )
            await send({"ok": True, "stats": st})
        elif op == "health":
            # Cheap by construction (no cache scan): safe inline.
            await send({"ok": True, "health": self.health()})
        elif op == "shutdown":
            await send({"ok": True, "stopping": True})
            asyncio.get_running_loop().create_task(self.stop())
            return True
        else:
            await send({"ok": False, "error": f"unknown op {op!r}"})
        return False

    @staticmethod
    def _job_reply(job: Job, **extra: Any) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "ok": job.state == "done",
            "job": job.to_dict(),
            **extra,
        }
        if job.error:
            payload["error"] = job.error
            if job.error.startswith(_DRAIN_ERROR):
                # Drain failures are transient: the job is journaled and
                # replays after the restart — tell the client to retry.
                payload["retryable"] = True
        return payload

    @staticmethod
    async def _wait_done(job: Job, timeout: float | None) -> None:
        if job.state in _DONE_STATES:
            return
        if timeout is None:
            await job.done_event.wait()
        else:
            try:
                await asyncio.wait_for(job.done_event.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                raise ReproError(
                    f"timed out after {timeout}s waiting for {job.id} "
                    f"(state {job.state})"
                ) from None

    async def _stream_events(self, job: Job, send) -> None:
        """Stream job events as they happen, then a terminal summary.

        Events include the per-stage span timings merged from the worker
        (the ``spans`` event appended at completion), so a watcher sees
        queued → started → per-stage progress → done.
        """
        sent = 0
        while True:
            while sent < len(job.events):
                await send({"ok": True, **job.events[sent]})
                sent += 1
            if job.state in _DONE_STATES:
                await send({"ok": True, "done": True, "job": job.to_dict()})
                return
            try:
                await asyncio.wait_for(job.done_event.wait(), timeout=0.2)
            except asyncio.TimeoutError:
                pass  # poll for incremental events


class ServerThread:
    """A :class:`JobServer` running its own event loop on a thread.

    For tests, benchmarks and embedding: construct, :meth:`start`, talk
    to it with a :class:`~repro.service.client.ServiceClient`, then
    :meth:`stop`.  Exactly one endpoint is opened: a unix socket when
    *socket_path* is given, else localhost TCP on *port* (0 = ephemeral).
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs: Any,
    ) -> None:
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.server = JobServer(**server_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise ReproError("service thread failed to start in time")
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> None:
            try:
                if self.socket_path is not None:
                    await self.server.start_unix(self.socket_path)
                else:
                    self.port = await self.server.start_tcp(
                        self.host, self.port
                    )
            except BaseException as exc:  # surfaced to start()
                self._startup_error = exc
            finally:
                self._ready.set()

        loop.run_until_complete(boot())
        if self._startup_error is None:
            loop.run_until_complete(self.server.serve_forever())
        # Drain pending callbacks (closed connections etc.), then close.
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    @property
    def address(self) -> dict[str, Any]:
        """Client-ready address of the one open endpoint."""
        if self.socket_path is not None:
            return {"socket_path": self.socket_path}
        return {"host": self.host, "port": self.port}

    def stop(self, timeout: float = 10.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        thread.join(timeout=timeout)

    def drain(self, timeout: float | None = None) -> None:
        """Graceful counterpart of :meth:`stop` (blocks until drained)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.drain(timeout), loop
            ).result(timeout=(timeout or self.server.drain_timeout) + 30)
        thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
