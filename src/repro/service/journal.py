"""Write-ahead job journal for the customization service.

A :class:`~repro.service.server.JobServer` crash loses every queued and
running job — unacceptable for minutes-long jobs.  :class:`JobJournal`
makes the job table durable: an **append-only JSONL log** of lifecycle
records written as jobs move through the server,

* ``submitted`` — key, kind, normalized params, priority (the replayable
  request);
* ``started`` — the job reached a worker (diagnostic only);
* ``done`` / ``failed`` — terminal; the key needs no replay.

On restart the server replays the journal (:meth:`JobJournal.open`) and
resubmits every **non-terminal** job.  This is safe and exactly-once
because every job is content-keyed: a job that actually completed before
the crash (its ``done`` record lost to fsync batching, or its result
stored but the record torn) re-resolves to the same key and lands as an
at-rest cache hit, not a recompute.

Durability/throughput trade-offs are explicit:

* **fsync batching** — appends are flushed immediately but fsynced every
  ``fsync_every`` records (:meth:`sync` forces one; :meth:`lag` reports
  the un-synced backlog for the ``health`` op).  A crash can lose the
  last few *records*, never corrupt earlier ones; lost ``submitted``
  records were unacknowledged submits, lost terminal records merely
  cause a cache-hit replay.
* **compaction on checkpoint** — every ``compact_every`` appends (and
  once on open, right after replay) the log is atomically rewritten with
  only the live (non-terminal) records, so it stays proportional to the
  in-flight set instead of growing forever.
* **corruption-tolerant replay** — :func:`replay_journal` parses records
  until the first bad one (torn tail after a crash, garbled bytes) and
  truncates the file to the good prefix; everything before it is kept,
  everything after is dropped.  A journal can therefore always be
  opened, whatever state a crash left it in.

One server per journal path; two live servers appending to the same file
would interleave records.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from typing import Any

from repro import obs
from repro.errors import ReproError
from repro.service.jobs import journal_safe_params

__all__ = ["JobJournal", "replay_journal"]

logger = logging.getLogger("repro.service")

_TERMINAL = ("done", "failed")
_REC_NAMES = ("submitted", "started", "done", "failed")


def _valid_record(rec: Any) -> bool:
    if not isinstance(rec, dict):
        return False
    name = rec.get("rec")
    if name not in _REC_NAMES:
        return False
    if not isinstance(rec.get("key"), str) or not rec["key"]:
        return False
    if name == "submitted":
        return isinstance(rec.get("kind"), str) and isinstance(
            rec.get("params"), dict
        )
    return True


def replay_journal(path: str) -> tuple[list[dict], dict[str, Any]]:
    """Replay a journal file; returns ``(live_records, stats)``.

    ``live_records`` are the ``submitted`` records of jobs with no
    terminal record, in submission order — exactly the jobs a restarted
    server must resubmit.  Parsing stops at the *first* bad record and
    the file is truncated to the good prefix (a record after corruption
    cannot be trusted to be ordered); ``stats`` reports ``records``
    kept, the ``bad_offset`` (or None) and ``truncated_bytes`` dropped.
    A missing file is an empty journal, not an error.
    """
    stats: dict[str, Any] = {
        "records": 0,
        "bad_offset": None,
        "truncated_bytes": 0,
    }
    live: dict[str, dict] = {}
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return [], stats
    with fh:
        good_end = 0
        while True:
            line = fh.readline()
            if not line:
                break
            if line.endswith(b"\n"):
                try:
                    rec = json.loads(line)
                except ValueError:
                    rec = None
            else:  # torn tail: the crash interrupted an append
                rec = None
            if not _valid_record(rec):
                stats["bad_offset"] = good_end
                break
            good_end += len(line)
            stats["records"] += 1
            key = rec["key"]
            if rec["rec"] == "submitted":
                live[key] = rec
            elif rec["rec"] in _TERMINAL:
                live.pop(key, None)
        if stats["bad_offset"] is not None:
            end = fh.seek(0, os.SEEK_END)
            stats["truncated_bytes"] = end - good_end
    if stats["truncated_bytes"] > 0:
        with open(path, "r+b") as out:
            out.truncate(good_end)
    return list(live.values()), stats


class JobJournal:
    """Append-only JSONL job journal with replay, fsync batching and
    compaction.  See the module docstring for the design."""

    def __init__(
        self,
        path: str | os.PathLike,
        fsync_every: int = 8,
        compact_every: int = 4096,
    ) -> None:
        self.path = str(path)
        self.fsync_every = max(1, int(fsync_every))
        self.compact_every = max(16, int(compact_every))
        self._fh: Any = None
        self._pending = 0  # appends since the last fsync
        self._since_compact = 0
        self._live: dict[str, dict] = {}
        self.appends = 0
        self.compactions = 0
        self.truncated_bytes = 0
        self.replayed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> list[dict]:
        """Replay, compact to the live set, start appending.

        Returns the live (non-terminal) ``submitted`` records in
        submission order for the server to resubmit.  The returned jobs
        are already in the compacted file, so the server must *not*
        journal them again on resubmit.
        """
        live, stats = replay_journal(self.path)
        self.replayed = len(live)
        self.truncated_bytes = stats["truncated_bytes"]
        if stats["truncated_bytes"]:
            obs.inc(
                "service.journal.truncated_bytes", stats["truncated_bytes"]
            )
            if obs.warn_once("service.journal.corrupt"):
                logger.warning(
                    "journal %s: bad record at byte %d; kept the %d-record "
                    "prefix, dropped %d bytes",
                    self.path,
                    stats["bad_offset"],
                    stats["records"],
                    stats["truncated_bytes"],
                )
        self._live = {rec["key"]: rec for rec in live}
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # The restart is a checkpoint: rewrite the log to the live set.
        self._rewrite(self._live.values())
        if stats["records"] > len(live):
            self.compactions += 1
        self._fh = open(self.path, "ab")
        return list(self._live.values())

    def close(self) -> None:
        """Force a final fsync and stop appending (idempotent)."""
        if self._fh is None:
            return
        self.sync()
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def record_submitted(
        self, key: str, kind: str, params: dict, priority: int = 0
    ) -> bool:
        """Journal a queued job; returns False when it cannot be made
        durable (unserializable params) — the job still runs, it just
        will not be replayed after a crash."""
        try:
            params = journal_safe_params(params)
        except ReproError as exc:
            obs.inc("service.journal.skipped")
            if obs.warn_once("service.journal.unserializable"):
                logger.warning(
                    "journal %s: cannot journal a %r job (%s); it will not "
                    "survive a crash",
                    self.path,
                    kind,
                    exc,
                )
            return False
        rec = {
            "rec": "submitted",
            "key": key,
            "kind": kind,
            "params": params,
            "priority": priority,
            "t": time.time(),
        }
        self._live[key] = rec
        self._append(rec)
        return True

    def record_started(self, key: str) -> None:
        self._append({"rec": "started", "key": key, "t": time.time()})

    def record_done(self, key: str, source: str = "computed") -> None:
        self._live.pop(key, None)
        self._append(
            {"rec": "done", "key": key, "source": source, "t": time.time()}
        )

    def record_failed(self, key: str, error: str) -> None:
        self._live.pop(key, None)
        self._append({
            "rec": "failed",
            "key": key,
            "error": str(error)[:500],
            "t": time.time(),
        })

    def _append(self, rec: dict) -> None:
        if self._fh is None:
            return  # closed (server stopping): drop silently
        self._fh.write(json.dumps(rec, sort_keys=True).encode() + b"\n")
        self._fh.flush()
        self.appends += 1
        obs.inc("service.journal.appends")
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.sync()
        self._since_compact += 1
        if self._since_compact >= self.compact_every:
            self.compact()

    # ------------------------------------------------------------------
    # Durability controls
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force the batched fsync now."""
        if self._fh is None or self._pending == 0:
            return
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        obs.inc("service.journal.fsyncs")
        self._pending = 0

    def lag(self) -> int:
        """Appended-but-not-yet-fsynced record count (journal lag)."""
        return self._pending

    def compact(self) -> None:
        """Checkpoint: atomically rewrite the log with only live records."""
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        self._rewrite(self._live.values())
        self._fh = open(self.path, "ab")
        self.compactions += 1
        obs.inc("service.journal.compactions")

    def _rewrite(self, records) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(prefix=".journal-", dir=parent)
        try:
            with os.fdopen(fd, "wb") as out:
                for rec in records:
                    out.write(json.dumps(rec, sort_keys=True).encode() + b"\n")
                out.flush()
                try:
                    os.fsync(out.fileno())
                except OSError:  # pragma: no cover
                    pass
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._pending = 0
        self._since_compact = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Number of non-terminal (replayable) jobs in the journal."""
        return len(self._live)

    def stats(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "appends": self.appends,
            "lag": self.lag(),
            "live": self.live,
            "compactions": self.compactions,
            "replayed": self.replayed,
            "truncated_bytes": self.truncated_bytes,
        }
