"""Design-space sensitivity analysis for customization results.

Helpers a designer uses after the solvers: where does the next unit of
silicon help most, which tasks dominate the utilization, and how close is
each task to its best configuration.  Backs the CLI ``explain`` command and
the examples.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.edf_select import select_edf
from repro.errors import ScheduleError
from repro.rtsched.task import TaskSet

__all__ = [
    "TaskBreakdown",
    "utilization_breakdown",
    "marginal_area_utility",
    "area_sweep",
]


@dataclass(frozen=True)
class TaskBreakdown:
    """Per-task view of a customization assignment.

    Attributes:
        name: task name.
        configuration: chosen configuration index.
        utilization: the task's utilization under that configuration.
        share: fraction of the total utilization.
        area: area consumed by the task.
        headroom: utilization still recoverable by moving to the task's
            fastest configuration (ignoring area).
    """

    name: str
    configuration: int
    utilization: float
    share: float
    area: float
    headroom: float


def utilization_breakdown(
    task_set: TaskSet, assignment: Sequence[int]
) -> list[TaskBreakdown]:
    """Explain an assignment task by task, sorted by utilization share."""
    if len(assignment) != len(task_set):
        raise ScheduleError("assignment length must match task count")
    total = task_set.utilization_for(assignment)
    rows: list[TaskBreakdown] = []
    for task, j in zip(task_set, assignment):
        u = task.config_utilization(j)
        best = min(c.cycles for c in task.configurations) / task.period
        rows.append(
            TaskBreakdown(
                name=task.name,
                configuration=j,
                utilization=u,
                share=u / total if total > 0 else 0.0,
                area=task.configurations[j].area,
                headroom=max(0.0, u - best),
            )
        )
    rows.sort(key=lambda r: -r.utilization)
    return rows


def marginal_area_utility(
    task_set: TaskSet,
    area_budget: float,
    delta: float | None = None,
) -> float:
    """Utilization recovered per extra unit of area at *area_budget*.

    Finite-difference estimate ``(U(A) - U(A + delta)) / delta`` using the
    optimal EDF selection at both budgets.  Near zero once every task sits
    at its fastest configuration.
    """
    if delta is None:
        delta = max(1.0, 0.05 * max(area_budget, 1.0))
    u_now = select_edf(task_set, area_budget).utilization
    u_next = select_edf(task_set, area_budget + delta).utilization
    return max(0.0, (u_now - u_next) / delta)


def area_sweep(
    task_set: TaskSet,
    budgets: Sequence[float],
    policy: str = "edf",
) -> list[tuple[float, float]]:
    """(budget, optimal utilization) pairs across *budgets*.

    RMS points where no schedulable assignment exists report
    ``float('inf')``.
    """
    from repro.core.rms_select import select_rms

    out: list[tuple[float, float]] = []
    for budget in budgets:
        if policy == "edf":
            out.append((budget, select_edf(task_set, budget).utilization))
        elif policy == "rms":
            sel = select_rms(task_set, budget)
            out.append((budget, sel.utilization))
        else:
            raise ScheduleError(f"unknown policy {policy!r}; use 'edf' or 'rms'")
    return out
