"""JIT toolchain gateway for the ``engine="compiled"`` kernels.

The compiled engines (:mod:`repro.enumeration.mimo_compiled`,
:mod:`repro.mlgp.mlgp_compiled`) express their hot loops as
**nopython-style Python functions** over packed uint64 NumPy matrices —
no Python objects, no fancy indexing, scalar word loops only.  This
module decides what actually executes them:

* ``"numba"`` — :func:`numba.njit` (nopython, ``cache=True``) compiles
  the registered kernel functions on first use.  This is the production
  tier: the same functions, machine code instead of bytecode.
* ``"interp"`` — the registered functions run under the plain
  interpreter.  Far too slow to ever *dispatch* to in production (the
  vectorized array engine wins by orders of magnitude), it exists so the
  differential suites can execute the exact kernel logic bit-for-bit on
  hosts without numba.  Enabled only via :func:`force_interp_for_tests`
  or the ``REPRO_JIT_INTERP`` environment variable.
* ``"none"`` — no toolchain.  ``engine="compiled"`` callers consult
  :func:`available` and degrade to the array kernels after a one-shot
  :func:`repro.obs.warn_once` plus a ``jit.fallback`` counter (see
  :func:`note_fallback`); nothing errors.

The ``REPRO_NO_NUMBA`` environment variable (non-empty) is a kill
switch mirroring ``REPRO_NO_BITWISE_COUNT``: it forces ``"none"`` no
matter what is importable, so the fallback ladder
compiled → array → bitset stays exercised on CI even where numba is
installed.

Kernel builds are memoized per name and counted in the
``jit.kernel_build`` metric — the warm-vs-cold test asserts the second
``get_kernel`` call returns the cached callable without rebuilding.
With numba the dispatcher additionally persists machine code on disk
(``cache=True``), so even the first call of a fresh process skips
LLVM when a prior run compiled the same kernel.
"""

from __future__ import annotations

import os
from typing import Callable

from repro import obs

__all__ = [
    "available",
    "toolchain",
    "register_kernel",
    "get_kernel",
    "kernel_build_count",
    "note_fallback",
    "engine_cache_tag",
    "reset_toolchain_cache",
    "force_interp_for_tests",
    "ENV_NO_NUMBA",
    "ENV_FORCE_INTERP",
]

#: Kill switch: non-empty disables every JIT tier (``toolchain() == "none"``).
ENV_NO_NUMBA = "REPRO_NO_NUMBA"

#: Dev/test knob: non-empty runs the kernels interpreted when numba is
#: absent (never preferred over numba when both would apply).
ENV_FORCE_INTERP = "REPRO_JIT_INTERP"

#: Resolved toolchain, computed lazily; ``None`` means "not probed yet".
_toolchain: str | None = None

#: Registered pure-Python kernel functions by name.
_REGISTRY: dict[str, Callable] = {}

#: Built (jitted or interpreted) callables by name.
_BUILT: dict[str, Callable] = {}

#: Total kernel builds this process (mirrors the ``jit.kernel_build``
#: metric but survives :func:`repro.obs.reset`).
_build_count = 0


def _probe() -> str:
    """Resolve the toolchain tier from the environment (uncached)."""
    if os.environ.get(ENV_NO_NUMBA):
        return "none"
    try:
        import numba  # noqa: F401

        return "numba"
    except Exception:
        pass
    if os.environ.get(ENV_FORCE_INTERP):
        return "interp"
    return "none"


def toolchain() -> str:
    """The active JIT tier: ``"numba"``, ``"interp"`` or ``"none"``."""
    global _toolchain
    if _toolchain is None:
        _toolchain = _probe()
    return _toolchain


def available() -> bool:
    """True when ``engine="compiled"`` has something to execute with."""
    return toolchain() != "none"


def reset_toolchain_cache() -> None:
    """Re-probe the environment on next use (tests flip the env knobs).

    Built kernels are dropped too: a kernel compiled under one tier must
    not leak into another (e.g. after setting ``REPRO_NO_NUMBA``).
    """
    global _toolchain
    _toolchain = None
    _BUILT.clear()


def force_interp_for_tests(monkeypatch) -> str:
    """Make ``engine="compiled"`` executable for a differential test.

    When a real toolchain (numba) is importable and not killed, this is
    a no-op — the test then exercises the machine-code tier.  Otherwise
    the interpreted tier is forced so the identical kernel logic still
    runs bit-for-bit.  Returns the resulting tier.
    """
    monkeypatch.delenv(ENV_NO_NUMBA, raising=False)
    monkeypatch.setenv(ENV_FORCE_INTERP, "1")
    reset_toolchain_cache()
    return toolchain()


def register_kernel(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register *func* as the pure-Python body of kernel *name*.

    The decorated function itself is returned unchanged — modules keep a
    plain importable reference; execution goes through
    :func:`get_kernel`.
    """

    def deco(func: Callable) -> Callable:
        _REGISTRY[name] = func
        return func

    return deco


def _build(func: Callable) -> Callable:
    """Wrap *func* for the active tier (numba njit or interpreted)."""
    if toolchain() == "numba":
        import numba

        return numba.njit(cache=True, nogil=True)(func)
    return func


def get_kernel(name: str) -> Callable | None:
    """The executable kernel *name*, or ``None`` when no toolchain is up.

    The first call per (name, tier) builds and memoizes; later calls
    return the cached callable — ``jit.kernel_build`` counts builds so
    tests can assert warm calls skip compilation.
    """
    if not available():
        return None
    built = _BUILT.get(name)
    if built is None:
        if name not in _REGISTRY:
            # Kernels register at module import; pull in the hosting
            # modules so callers need not know which module owns a name.
            from repro.enumeration import mimo_compiled  # noqa: F401
            from repro.mlgp import mlgp_compiled  # noqa: F401
        global _build_count
        built = _build(_REGISTRY[name])
        _BUILT[name] = built
        _build_count += 1
        obs.inc("jit.kernel_build")
        obs.inc(f"jit.kernel_build.{name}")
    return built


def kernel_build_count() -> int:
    """Total kernel builds this process (warm-vs-cold test hook)."""
    return _build_count


def note_fallback(site: str) -> None:
    """Record one compiled→array degradation at *site*.

    Warns once per process epoch (the repeats stay visible through the
    ``jit.fallback`` counters, per the :func:`repro.obs.warn_once`
    contract) instead of erroring — ``engine="compiled"`` must stay a
    safe choice on hosts without the toolchain.
    """
    obs.inc("jit.fallback")
    obs.inc(f"jit.fallback.{site}")
    if obs.warn_once("jit.toolchain_missing"):
        import warnings

        warnings.warn(
            f"engine='compiled' has no JIT toolchain (numba not importable"
            f" or {ENV_NO_NUMBA} set); falling back to the array kernels"
            f" (first hit: {site})",
            RuntimeWarning,
            stacklevel=3,
        )


def engine_cache_tag(engine: str) -> str:
    """Cache-key form of an engine name.

    ``"auto"`` and ``"compiled"`` resolve differently depending on the
    host's toolchain, so two hosts can legitimately compute different
    (deterministic) results under binding budgets; qualifying the tag
    keeps their artifacts distinct in shared caches.  The tag encodes
    the *result-equivalence class*, not the raw tier:

    * ``auto`` dispatches to the compiled kernels only under numba (the
      interp tier is never auto-selected), so ``auto+jit`` (numba) vs
      ``auto+cpu`` (interp or none — both resolve to array/bitset);
    * ``compiled`` runs the kernels under numba *or* interp — bit-
      identical logic — and degrades to the array engine under
      ``"none"``; the array engine's upper delegation cliff
      (``ARRAY_MAX_NODES``) makes that fallback diverge on huge
      budget-bound blocks, hence ``compiled+jit`` vs ``compiled+cpu``.

    The fixed-strategy engines key as themselves.
    """
    if engine == "auto":
        return "auto+jit" if toolchain() == "numba" else "auto+cpu"
    if engine == "compiled":
        return "compiled+jit" if available() else "compiled+cpu"
    return engine
