"""Compiled ESU enumeration (``engine="compiled"``).

Re-expresses the array engine's level-synchronous ESU frontier walk
(:mod:`repro.enumeration.mimo_array`) as one **nopython-style kernel** —
scalar word loops over the same packed uint64 bitset matrices, no NumPy
dispatch inside the walk — executed through :mod:`repro.jit`: compiled by
numba where the toolchain is present, interpreted under
``REPRO_JIT_INTERP`` (differential testing on toolchain-less hosts), and
degrading to the array engine otherwise.

Why a third formulation wins: the array engine already removed
per-candidate Python, but each level still costs a fixed number of NumPy
kernel launches over frontier-sized matrices, so its per-candidate cost
flatlines at dispatch overhead on mid-size blocks and the frontier
matrices fall out of cache on large ones.  The compiled walk touches
each word exactly when the algorithm needs it — per-candidate cost is a
handful of word operations with no interpreter in between.

**Equivalence contract** (asserted by
``tests/test_enumeration_differential.py``): the kernel visits the exact
tree :func:`repro.enumeration.mimo_array.enumerate_array` walks — the
same flat state order per level (parents ascending, extension slots
popped from the end), the same per-root breadth-first visit budgets and
cap consumption, the same monotone input-prune / feasibility /
convexity / port-count tests — so candidates *and* all five prune
counters are bit-identical to the array kernel at **every** budget,
binding or not; both then equal the bitset DFS whenever budgets and caps
do not bind.  Because the fallback target is that same array engine, a
missing toolchain never changes results, only speed — except on blocks
past the array engine's upper delegation cliff
(:data:`~repro.enumeration.mimo_array.ARRAY_MAX_NODES`), where the
compiled walk keeps going level-synchronously while the fallback lands
on the bitset DFS; under the binding budgets such blocks imply, the two
(deterministic) candidate sets differ, which is why
:func:`repro.jit.engine_cache_tag` qualifies ``"compiled"`` artifacts
by toolchain presence.

The per-level algorithm state mirrors the array engine row for row:

* ``state`` — fused ``(S, 4W)`` accumulator rows
  ``[sub | pred-union | anc-union | desc-union]``;
* ``live``/``root`` — live-in operand totals and per-root index rows;
* the extension CSR with per-slot exclusive prefix-OR masks ("kept
  siblings"), copied with the kept prefix and extended per fresh bit —
  never recomputed;
* per-state ``j``/``w``/parent links for building children CSRs.
"""

from __future__ import annotations

import numpy as np

from repro import jit
from repro.enumeration import mimo_array
from repro.graphs.dfg import DataFlowGraph

__all__ = [
    "enumerate_connected_compiled",
    "enumerate_compiled",
    "COMPILED_MIN_NODES",
]

#: Hybrid dispatch threshold (shared rationale with
#: :data:`repro.enumeration.mimo_array.ARRAY_MIN_NODES`): below this many
#: DFG nodes even a compiled walk cannot beat the bitset DFS — the
#: per-call kernel entry and constant packing dominate graphs this tiny —
#: so the bitset kernel (bit-identical whenever budgets/caps do not
#: bind) takes them.  Tests pin it to 0 to drive the kernel on small
#: graphs.
COMPILED_MIN_NODES = 24


@jit.register_kernel("esu_level_walk")
def _esu_level_walk(  # noqa: C901 - one fused kernel, nopython-compatible
    CMB,  # (n, 4W) uint64: [sub-bit | pred | anc | desc] constant rows
    ADJ,  # (n, W)  uint64: undirected valid adjacency
    SUCC,  # (n, W) uint64: successor masks
    EXT,  # (n,)   int64: external (live-in) operand counts
    LOWM,  # (n, W) uint64: bits strictly below b
    NEVER,  # (R, W) uint64: per-root never-absorbable producers
    ABOVE,  # (R, W) uint64: per-root ids strictly above the root
    LIVE,  # (n,)  uint8: live-out flags
    ROOTS,  # (R,)  int64: valid node ids, ascending
    max_inputs,
    max_outputs,
    max_size,
    min_size,
    max_candidates,
    per_root_budget,
    per_root_cap,
):
    """Level-synchronous ESU walk; returns (feasible rows, counters).

    Counters: ``[visited, feasible, pruned_visit_budget, pruned_inputs,
    pruned_outputs]`` — same five the bitset/array engines report.
    """
    W = ADJ.shape[1]
    W2 = 2 * W
    W3 = 3 * W
    W4 = 4 * W
    R = ROOTS.shape[0]

    def popcnt(x):
        # SWAR popcount without the multiply fold (no uint64 overflow, so
        # the interpreted tier stays silent under NumPy's overflow
        # warnings; byte sums stay < 2**7 per lane).
        x = x - ((x >> 1) & 0x5555555555555555)
        x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
        x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F
        x = x + (x >> 8)
        x = x + (x >> 16)
        x = x + (x >> 32)
        return np.int64(x & 0x7F)

    all_visited = 0
    n_feas = 0
    cut_budget = 0
    cut_inputs = 0
    cut_outputs = 0

    visited_per_root = np.zeros(R, dtype=np.int64)
    found_per_root = np.zeros(R, dtype=np.int64)
    alive_root = np.ones(R, dtype=np.uint8)

    feas_cap = 256
    feas = np.empty((feas_cap, W), dtype=np.uint64)

    # --- level 1: one state per root (always within its visit budget) ---
    S = R
    state = np.empty((S, W4), dtype=np.uint64)
    live = np.empty(S, dtype=np.int64)
    root = np.empty(S, dtype=np.int64)
    # Popped-slot bookkeeping for levels >= 2 (unused at level 1).
    stj = np.zeros(S, dtype=np.int64)
    stw = np.zeros(S, dtype=np.int64)
    stpar = np.zeros(S, dtype=np.int64)
    pkeep = np.zeros((S, W), dtype=np.uint64)
    for i in range(R):
        v = ROOTS[i]
        for t in range(W4):
            state[i, t] = CMB[v, t]
        live[i] = EXT[v]
        root[i] = i
        visited_per_root[i] = 1
    all_visited += R
    size = 1

    # Previous level's extension CSR (kept-prefix source for children).
    prev_csr = np.zeros((0, 1 + W), dtype=np.uint64)
    prev_off = np.zeros(1, dtype=np.int64)

    while True:
        # --- score the level's states in flat order (prune_and_score) ---
        pruned = np.zeros(S, dtype=np.uint8)
        for s in range(S):
            r = root[s]
            # Monotone input prune: producers that can never be absorbed
            # (invalid / below the root) plus live-in operands.
            nc = 0
            for t in range(W):
                ep = state[s, W + t] & ~state[s, t]
                nc += popcnt(ep & NEVER[r, t])
            if nc + live[s] > max_inputs:
                pruned[s] = 1
                cut_inputs += 1
                continue
            if size < min_size:
                continue
            # Input-port count over all external producers.
            ic = 0
            for t in range(W):
                ic += popcnt(state[s, W + t] & ~state[s, t])
            if ic + live[s] > max_inputs:
                continue
            # Convexity: no outside node both ancestor and descendant.
            convex = True
            for t in range(W):
                if (state[s, W2 + t] & state[s, W3 + t] & ~state[s, t]) != 0:
                    convex = False
                    break
            if not convex:
                continue
            # Output-port count: members live-out or externally consumed.
            outs = 0
            for t in range(W):
                word = state[s, t]
                while word != 0:
                    low = word & (~word + 1)
                    word = word ^ low
                    b = popcnt(low - 1) + (t << 6)
                    if LIVE[b] != 0:
                        outs += 1
                    else:
                        for q in range(W):
                            if (SUCC[b, q] & ~state[s, q]) != 0:
                                outs += 1
                                break
                    if outs > max_outputs:
                        break
                if outs > max_outputs:
                    break
            if outs > max_outputs:
                cut_outputs += 1
                continue
            # Feasible candidate: caps consume the level in flat order.
            if alive_root[r] == 0:
                continue
            if n_feas == feas_cap:
                bigger = np.empty((2 * feas_cap, W), dtype=np.uint64)
                bigger[:feas_cap] = feas
                feas = bigger
                feas_cap = 2 * feas_cap
            for t in range(W):
                feas[n_feas, t] = state[s, t]
            n_feas += 1
            found_per_root[r] += 1
            if found_per_root[r] >= per_root_cap:
                alive_root[r] = 0
            if n_feas >= max_candidates:
                for q in range(R):
                    alive_root[q] = 0

        if size >= max_size:
            break
        any_alive = False
        for q in range(R):
            if alive_root[q] != 0:
                any_alive = True
                break
        if not any_alive:
            break

        # --- survivors only: filter before the extension CSR is built ---
        n_surv = 0
        for s in range(S):
            if pruned[s] == 0 and alive_root[root[s]] != 0:
                n_surv += 1
        if n_surv == 0:
            break
        surv = np.empty(n_surv, dtype=np.int64)
        k = 0
        for s in range(S):
            if pruned[s] == 0 and alive_root[root[s]] != 0:
                surv[k] = s
                k += 1

        # Fresh extension bits + new lengths per survivor; drop dead ends
        # (empty extension lists cannot expand).
        fresh = np.empty((n_surv, W), dtype=np.uint64)
        new_len = np.empty(n_surv, dtype=np.int64)
        for k in range(n_surv):
            s = surv[k]
            r = root[s]
            if size == 1:
                # Root extension list: neighbours above the root.
                cnt = 0
                for t in range(W):
                    f = ADJ[ROOTS[r], t] & ABOVE[r, t]
                    fresh[k, t] = f
                    cnt += popcnt(f)
                new_len[k] = cnt
            else:
                w = stw[s]
                cnt = 0
                for t in range(W):
                    f = ADJ[w, t] & ABOVE[r, t] & ~(state[s, t] | pkeep[s, t])
                    fresh[k, t] = f
                    cnt += popcnt(f)
                new_len[k] = stj[s] + cnt
        n_keep = 0
        for k in range(n_surv):
            if new_len[k] > 0:
                n_keep += 1
        if n_keep == 0:
            break
        if n_keep < n_surv:
            keep = np.empty(n_keep, dtype=np.int64)
            i = 0
            for k in range(n_surv):
                if new_len[k] > 0:
                    keep[i] = k
                    i += 1
        else:
            keep = np.arange(n_surv)

        # --- child extension CSR: kept prefix slots, then fresh ids ---
        off = np.empty(n_keep + 1, dtype=np.int64)
        off[0] = 0
        for i in range(n_keep):
            off[i + 1] = off[i] + new_len[keep[i]]
        E = off[n_keep]
        csr = np.empty((E, 1 + W), dtype=np.uint64)
        for i in range(n_keep):
            k = keep[i]
            s = surv[k]
            base = off[i]
            if size == 1:
                pos = 0
            else:
                # Kept prefix: the parent's first j slots, verbatim.
                j = stj[s]
                poff = prev_off[stpar[s]]
                for q in range(j):
                    for t in range(1 + W):
                        csr[base + q, t] = prev_csr[poff + q, t]
                pos = j
            # Fresh slots ascending; masks extend the kept prefix with
            # the fresh bits before each id.
            for t in range(W):
                word = fresh[k, t]
                while word != 0:
                    low = word & (~word + 1)
                    word = word ^ low
                    b = popcnt(low - 1) + (t << 6)
                    csr[base + pos, 0] = np.uint64(b)
                    for t2 in range(W):
                        csr[base + pos, 1 + t2] = pkeep[s, t2] | (
                            fresh[k, t2] & LOWM[b, t2]
                        )
                    pos += 1

        # --- expansion: per-root visit-budget admission in flat child
        # order (states ascending, slots popped from the end), then
        # materialize the admitted children as the next level. ---
        n_children = 0
        for i in range(n_keep):
            n_children += off[i + 1] - off[i]
        max_seen = 0
        for q in range(R):
            if visited_per_root[q] > max_seen:
                max_seen = visited_per_root[q]
        fast_admit = max_seen + n_children <= per_root_budget

        new_state = np.empty((n_children, W4), dtype=np.uint64)
        new_live = np.empty(n_children, dtype=np.int64)
        new_root = np.empty(n_children, dtype=np.int64)
        new_stj = np.empty(n_children, dtype=np.int64)
        new_stw = np.empty(n_children, dtype=np.int64)
        new_stpar = np.empty(n_children, dtype=np.int64)
        new_pkeep = np.empty((n_children, W), dtype=np.uint64)
        n_admit = 0
        for i in range(n_keep):
            s = surv[keep[i]]
            r = root[s]
            length = off[i + 1] - off[i]
            for j in range(length - 1, -1, -1):
                if fast_admit:
                    visited_per_root[r] += 1
                    all_visited += 1
                else:
                    vnum = visited_per_root[r] + 1
                    if vnum <= per_root_budget:
                        visited_per_root[r] = vnum
                        all_visited += 1
                    elif vnum == per_root_budget + 1:
                        visited_per_root[r] = vnum
                        all_visited += 1
                        cut_budget += 1
                        alive_root[r] = 0
                        continue
                    else:
                        continue
                slot = off[i] + j
                w = np.int64(csr[slot, 0])
                c = n_admit
                for t in range(W4):
                    new_state[c, t] = state[s, t] | CMB[w, t]
                new_live[c] = live[s] + EXT[w]
                new_root[c] = r
                new_stj[c] = j
                new_stw[c] = w
                new_stpar[c] = i
                for t in range(W):
                    new_pkeep[c, t] = csr[slot, 1 + t]
                n_admit += 1
        if n_admit == 0:
            break

        state = new_state[:n_admit]
        live = new_live[:n_admit]
        root = new_root[:n_admit]
        stj = new_stj[:n_admit]
        stw = new_stw[:n_admit]
        stpar = new_stpar[:n_admit]
        pkeep = new_pkeep[:n_admit]
        S = n_admit
        prev_csr = csr
        prev_off = off
        size += 1

    counters = np.empty(5, dtype=np.int64)
    counters[0] = all_visited
    counters[1] = n_feas
    counters[2] = cut_budget
    counters[3] = cut_inputs
    counters[4] = cut_outputs
    return feas[:n_feas].copy(), counters


def _live8(c: "mimo_array._ArrayConsts") -> np.ndarray:
    flags = getattr(c, "_live8", None)
    if flags is None:
        flags = c.live_flag.astype(np.uint8)
        c._live8 = flags
    return flags


def enumerate_compiled(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int,
    max_candidates: int,
    min_size: int,
    max_visited: int | None,
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """Run the compiled level walk on *dfg* (toolchain must be up)."""
    kern = jit.get_kernel("esu_level_walk")
    if kern is None:  # pragma: no cover - callers gate on jit.available()
        raise RuntimeError("no JIT toolchain; use enumerate_connected_compiled")
    c = mimo_array._get_consts(dfg)
    R = c.roots.shape[0]
    if R == 0:
        return []
    total_budget = (
        max_visited if max_visited is not None else 25 * max_candidates
    )
    per_root_budget = max(200, total_budget // R)
    per_root_cap = max(20, max_candidates // R)
    feas, counters = kern(
        c.CMB,
        c.ADJ,
        c.SUCC,
        c.EXT,
        c.LOWM,
        c.NEVER,
        c.ABOVE,
        _live8(c),
        c.roots,
        max_inputs,
        max_outputs,
        max_size,
        min_size,
        max_candidates,
        per_root_budget,
        per_root_cap,
    )
    if stats is not None:
        stats["visited"] = stats.get("visited", 0) + int(counters[0])
        stats["feasible"] = stats.get("feasible", 0) + int(counters[1])
        stats["pruned_visit_budget"] = (
            stats.get("pruned_visit_budget", 0) + int(counters[2])
        )
        stats["pruned_inputs"] = (
            stats.get("pruned_inputs", 0) + int(counters[3])
        )
        stats["pruned_outputs"] = (
            stats.get("pruned_outputs", 0) + int(counters[4])
        )
    if feas.shape[0] == 0:
        return []
    return mimo_array.canonical_candidates(feas)


def enumerate_connected_compiled(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int,
    max_candidates: int,
    min_size: int,
    max_visited: int | None,
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """``engine="compiled"`` entry point with the fallback ladder.

    No toolchain (numba absent or ``REPRO_NO_NUMBA`` set) → degrade to
    ``engine="array"`` (bit-identical by contract) with a one-shot
    warning plus ``jit.fallback`` counters.  Tiny blocks delegate to the
    bitset DFS exactly like the array engine's lower cliff.  Unlike the
    array engine there is no upper cliff: the compiled walk's
    per-candidate cost keeps falling where the NumPy frontier outgrows
    the cache, so large budget-bound blocks stay on the kernel.
    """
    from repro.enumeration import mimo

    if not jit.available():
        jit.note_fallback("enumeration")
        return mimo.enumerate_connected(
            dfg,
            max_inputs,
            max_outputs,
            max_size=max_size,
            max_candidates=max_candidates,
            min_size=min_size,
            max_visited=max_visited,
            engine="array",
            stats=stats,
        )
    if len(dfg) < COMPILED_MIN_NODES:
        return mimo._enumerate_bitset(
            dfg, max_inputs, max_outputs, max_size, max_candidates,
            min_size, max_visited, stats,
        )
    return enumerate_compiled(
        dfg, max_inputs, max_outputs, max_size, max_candidates,
        min_size, max_visited, stats,
    )
