"""Disconnected MIMO candidate construction (thesis 2.3.1, [81, 23, 36]).

On base architectures without instruction-level parallelism, packing two
*independent* connected subgraphs into one custom instruction lets them
execute concurrently in the CFU, which a connected candidate cannot
express.  A disconnected candidate is the union of connected feasible
components with (a) combined I/O within the port constraints, (b) no
dataflow path between the components (so the union stays convex and the
components are truly parallel).

The hardware latency of a disconnected candidate is the *maximum* of the
component critical paths (they run in parallel), which is where the extra
gain over sequential software execution comes from.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.dfg import DataFlowGraph

__all__ = ["pair_disconnected", "components_independent"]


def components_independent(
    dfg: DataFlowGraph, a: frozenset[int], b: frozenset[int]
) -> bool:
    """True if no dataflow path connects components *a* and *b*.

    Checked both ways by forward reachability from the earlier component.
    Disjointness is required.
    """
    if a & b:
        return False
    # Forward reachability from each node set, bounded by max target id.
    for src, dst in ((a, b), (b, a)):
        target_max = max(dst)
        frontier = [n for n in src if n < target_max]
        seen = set(frontier)
        while frontier:
            cur = frontier.pop()
            for s in dfg.succs(cur):
                if s in dst:
                    return False
                if s < target_max and s not in seen:
                    seen.add(s)
                    frontier.append(s)
    return True


def pair_disconnected(
    dfg: DataFlowGraph,
    connected: list[frozenset[int]],
    max_inputs: int,
    max_outputs: int,
    max_pairs: int = 2000,
) -> list[frozenset[int]]:
    """Combine connected feasible candidates into disconnected pairs.

    Args:
        dfg: the dataflow graph.
        connected: connected feasible candidates (e.g. from
            :func:`repro.enumeration.enumerate_connected`), ideally sorted
            by decreasing size/gain so the best pairs are found first.
        max_inputs / max_outputs: register-port constraints for the union.
        max_pairs: cap on the number of returned pairs.

    Returns:
        Unions of two independent components, each feasible as a whole.
    """
    pairs: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    for a, b in combinations(connected, 2):
        if len(pairs) >= max_pairs:
            break
        if a & b:
            continue
        union = a | b
        if union in seen:
            continue
        io = dfg.io_count(union)
        if io.inputs > max_inputs or io.outputs > max_outputs:
            continue
        if not components_independent(dfg, a, b):
            continue
        seen.add(union)
        pairs.append(union)
    pairs.sort(key=lambda s: (-len(s), sorted(s)))
    return pairs
