"""Custom-instruction candidates and candidate libraries.

A *candidate* is a feasible induced subgraph of one basic block's DFG,
annotated with its hardware cost and its per-execution cycle gain.  A
*candidate library* aggregates candidates over a program's (hot) basic
blocks, weighting gains by block execution frequency — the benefit of a
candidate is ``(sw_cycles - hw_cycles) x frequency`` (thesis Section 2.3.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel

__all__ = ["Candidate", "make_candidate", "CandidateLibrary"]


@dataclass(frozen=True)
class Candidate:
    """One feasible custom-instruction candidate.

    Attributes:
        block_index: index of the owning basic block within its program.
        nodes: member node ids within the block's DFG.
        sw_cycles: software latency of the covered operations.
        hw_cycles: latency of the custom instruction in processor cycles.
        area: hardware area in adder units.
        inputs / outputs: operand counts.
        frequency: execution count of the owning block (profile weight).
        structural_key: canonical key; equal keys mean isomorphic datapaths.
    """

    block_index: int
    nodes: frozenset[int]
    sw_cycles: int
    hw_cycles: int
    area: float
    inputs: int
    outputs: int
    frequency: float = 1.0
    structural_key: tuple = ()

    @property
    def gain_per_exec(self) -> int:
        """Cycles saved each time the owning block executes."""
        return self.sw_cycles - self.hw_cycles

    @property
    def total_gain(self) -> float:
        """Cycles saved over the whole profile."""
        return self.gain_per_exec * self.frequency

    @property
    def size(self) -> int:
        """Number of primitive operations covered."""
        return len(self.nodes)

    def overlaps(self, other: "Candidate") -> bool:
        """True if the two candidates cover a common operation.

        Overlapping candidates from the same block conflict: a base operation
        is covered by at most one custom instruction (thesis Section 2.3.2).
        """
        return self.block_index == other.block_index and bool(
            self.nodes & other.nodes
        )


def make_candidate(
    dfg: DataFlowGraph,
    nodes: Iterable[int],
    block_index: int = 0,
    frequency: float = 1.0,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
) -> Candidate:
    """Build a :class:`Candidate` from a node set (assumed feasible)."""
    node_list = sorted(set(nodes))
    node_set = set(node_list)
    preds = {n: [p for p in dfg.preds(n) if p in node_set] for n in node_list}
    ops = {n: dfg.op(n) for n in node_list}
    cost = model.subgraph_cost(node_list, preds, ops)
    io = dfg.io_count(node_list)
    return Candidate(
        block_index=block_index,
        nodes=frozenset(node_list),
        sw_cycles=cost.sw_cycles,
        hw_cycles=cost.hw_cycles,
        area=cost.area,
        inputs=io.inputs,
        outputs=io.outputs,
        frequency=frequency,
        structural_key=dfg.structural_key(node_list),
    )


class CandidateLibrary:
    """An ordered collection of candidates with conflict information."""

    def __init__(self, candidates: Sequence[Candidate] = ()) -> None:
        self._candidates = list(candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def __iter__(self):
        return iter(self._candidates)

    def __getitem__(self, i: int) -> Candidate:
        return self._candidates[i]

    def add(self, candidate: Candidate) -> None:
        self._candidates.append(candidate)

    def extend(self, candidates: Iterable[Candidate]) -> None:
        self._candidates.extend(candidates)

    @property
    def candidates(self) -> list[Candidate]:
        return list(self._candidates)

    def profitable(self) -> "CandidateLibrary":
        """Sub-library of candidates with strictly positive total gain."""
        return CandidateLibrary([c for c in self._candidates if c.total_gain > 0])

    def conflicts(self) -> list[tuple[int, int]]:
        """Pairs of candidate indices that cover a common operation."""
        by_block: dict[int, list[int]] = {}
        for i, c in enumerate(self._candidates):
            by_block.setdefault(c.block_index, []).append(i)
        pairs: list[tuple[int, int]] = []
        for indices in by_block.values():
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    i, j = indices[a], indices[b]
                    if self._candidates[i].nodes & self._candidates[j].nodes:
                        pairs.append((i, j))
        return pairs

    def isomorphism_classes(self) -> dict[tuple, list[int]]:
        """Group candidate indices by structural key (shared datapaths)."""
        classes: dict[tuple, list[int]] = {}
        for i, c in enumerate(self._candidates):
            classes.setdefault(c.structural_key, []).append(i)
        return classes
