"""MIMO (multiple-input multiple-output) candidate enumeration.

The number of convex subgraphs of a DFG is exponential in the worst case
(thesis Section 2.3.1), so practical identification bounds the search.  Two
enumerators are provided:

* :func:`enumerate_connected` — ESU-style enumeration of *connected* induced
  subgraphs without duplicates (each subgraph is generated exactly once from
  its minimum-id node), filtered by the I/O and convexity constraints, with
  size and count caps.  This is the production enumerator used to build
  candidate libraries.  Four engines implement it: the default
  ``"bitset"`` engine represents subgraphs as Python int bitmasks with
  incremental feasibility tracking, the ``"array"`` engine batches the
  same search level-synchronously over NumPy uint64 bitset matrices
  (:mod:`repro.enumeration.mimo_array`), the ``"compiled"`` engine runs
  the same level walk as JIT-compiled kernels when a toolchain is up
  (:mod:`repro.enumeration.mimo_compiled`, falling back to the array
  engine otherwise), and the ``"reference"`` engine is the original
  set-based implementation kept for differential testing.  On top of
  the family, ``engine="auto"`` picks per block via
  :func:`resolve_auto_engine` (block size × toolchain availability).
* :func:`enumerate_exhaustive` — plain subset enumeration over a (small)
  node set; exact but exponential.  Used by tests as ground truth and for
  tiny regions.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.dfg import DataFlowGraph

__all__ = [
    "enumerate_connected",
    "enumerate_exhaustive",
    "resolve_auto_engine",
    "ENGINES",
]

#: Engine names accepted by :func:`enumerate_connected`.
ENGINES = ("bitset", "array", "compiled", "auto", "reference")


def resolve_auto_engine(n_nodes: int) -> str:
    """The concrete engine ``engine="auto"`` picks for an *n_nodes* block.

    The table replaces the hand-tuned reading of the
    ``ARRAY_MIN_NODES``/``ARRAY_MAX_NODES`` cliffs at call sites:

    * a **numba** toolchain wins on every block large enough to amortize
      its per-call packing (the lower cliff is shared with the array
      engine) and has no upper cliff — the compiled walk keeps its
      per-candidate advantage where the NumPy frontier outgrows cache;
    * otherwise the measured array/bitset crossovers apply: bitset below
      ``ARRAY_MIN_NODES`` and at/above ``ARRAY_MAX_NODES``, array in
      between.  The ``"interp"`` test tier is deliberately *not*
      selected — interpreted kernels are orders of magnitude slower than
      the vectorized array engine and exist only so differential tests
      can execute the kernel logic without numba.
    """
    from repro import jit
    from repro.enumeration import mimo_array, mimo_compiled

    if (
        jit.toolchain() == "numba"
        and n_nodes >= mimo_compiled.COMPILED_MIN_NODES
    ):
        return "compiled"
    if mimo_array.ARRAY_MIN_NODES <= n_nodes < mimo_array.ARRAY_MAX_NODES:
        return "array"
    return "bitset"


def _undirected_adjacency(
    dfg: DataFlowGraph, allowed: set[int] | None = None
) -> dict[int, set[int]]:
    pool = dfg.valid_nodes if allowed is None else [
        n for n in dfg.valid_nodes if n in allowed
    ]
    pool_set = set(pool)
    adj: dict[int, set[int]] = {n: set() for n in pool}
    for n in pool:
        for p in dfg.preds(n):
            if p in pool_set:
                adj[n].add(p)
                adj[p].add(n)
    return adj


def enumerate_connected(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int = 12,
    max_candidates: int = 20000,
    min_size: int = 2,
    max_visited: int | None = None,
    engine: str = "bitset",
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """Enumerate feasible connected subgraphs of *dfg*.

    Uses the ESU scheme: for every valid node ``v`` (in increasing id order),
    enumerate exactly once every connected subgraph whose minimum node id is
    ``v`` by extending only with neighbours of id greater than ``v``.  Each
    enumerated subgraph is kept if it satisfies the input/output constraints
    and convexity.

    Args:
        dfg: the basic block's dataflow graph.
        max_inputs / max_outputs: register-port constraints.
        max_size: maximum number of operations in a candidate.
        max_candidates: stop after this many feasible candidates (the
            enumeration itself may visit more subgraphs).
        min_size: smallest candidate worth keeping (default 2; a singleton
            custom instruction cannot beat the native operation).
        max_visited: cap on subgraphs *visited* (feasible or not); defaults
            to ``25 x max_candidates``.  Bounds worst-case runtime on large
            dense blocks.
        engine: ``"bitset"`` (default; int-bitmask subgraphs, incremental
            feasibility, monotone input-bound pruning), ``"array"`` (the
            same search batched level-synchronously over NumPy uint64
            bitset matrices — one vectorized scoring pass per subgraph
            size instead of per-candidate Python branches),
            ``"compiled"`` (the array engine's level walk as
            JIT-compiled kernels; bit-identical to ``"array"`` at every
            budget, degrading to it when no toolchain is available — see
            :mod:`repro.enumeration.mimo_compiled`), ``"auto"`` (pick
            per block via :func:`resolve_auto_engine`) or
            ``"reference"`` (the original set-based path).  All engines
            return the same candidate set when the visit budgets and
            candidate caps do not bind; under binding budgets the bitset
            engine's pruning lets it reach more feasible subgraphs than
            the reference within the same budget, and the array/compiled
            engines spend the same per-root budgets breadth-first
            instead of depth-first (deterministically — see
            :mod:`repro.enumeration.mimo_array`).
        stats: optional dict; when given, ``"visited"`` and ``"feasible"``
            counters are accumulated into it (for the benchmark harness).
            The bitset and array engines additionally accumulate
            per-constraint prune counters: ``"pruned_visit_budget"``
            (visit-budget cuts), ``"pruned_inputs"`` (monotone input-bound
            cuts) and ``"pruned_outputs"`` (output-port rejections); the
            two tallies are bit-identical whenever budgets/caps do not
            bind.

    Returns:
        Feasible candidate node sets, largest first.
    """
    if engine == "auto":
        engine = resolve_auto_engine(len(dfg))
    if engine == "bitset":
        return _enumerate_bitset(
            dfg, max_inputs, max_outputs, max_size, max_candidates,
            min_size, max_visited, stats,
        )
    if engine == "compiled":
        from repro.enumeration import mimo_compiled

        return mimo_compiled.enumerate_connected_compiled(
            dfg, max_inputs, max_outputs, max_size, max_candidates,
            min_size, max_visited, stats,
        )
    if engine == "array":
        from repro.enumeration import mimo_array

        if mimo_array.ARRAY_MIN_NODES <= len(dfg) < mimo_array.ARRAY_MAX_NODES:
            return mimo_array.enumerate_array(
                dfg, max_inputs, max_outputs, max_size, max_candidates,
                min_size, max_visited, stats,
            )
        # Tiny blocks: per-level NumPy call overhead outweighs batching.
        # Very large blocks: the level frontier's bitset matrices outgrow
        # the cache and the DFS wins.  Either way the bitset kernel walks
        # the same tree faster, so the array engine delegates (same
        # results whenever budgets/caps don't bind, and deterministic
        # either way).
        return _enumerate_bitset(
            dfg, max_inputs, max_outputs, max_size, max_candidates,
            min_size, max_visited, stats,
        )
    if engine == "reference":
        return _enumerate_reference(
            dfg, max_inputs, max_outputs, max_size, max_candidates,
            min_size, max_visited, stats,
        )
    raise ValueError(
        f"unknown engine {engine!r}; use one of {', '.join(ENGINES)}"
    )


def _enumerate_reference(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int,
    max_candidates: int,
    min_size: int,
    max_visited: int | None,
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """Original set-based ESU enumeration (differential-testing baseline)."""
    adj = _undirected_adjacency(dfg)
    feasible: list[frozenset[int]] = []
    total_budget = max_visited if max_visited is not None else 25 * max_candidates
    roots = sorted(adj)
    if not roots:
        return []
    # Spread the visit budget across roots so large blocks are covered
    # end-to-end instead of exhausting the budget on the first few roots.
    per_root_budget = max(200, total_budget // len(roots))
    per_root_cap = max(20, max_candidates // len(roots))
    visited = 0
    found = 0
    all_visited = 0

    def extend(sub: set[int], extension: list[int], root: int) -> bool:
        """Returns False when this root's visit or candidate cap is hit."""
        nonlocal visited, found, all_visited
        visited += 1
        all_visited += 1
        if visited > per_root_budget:
            return False
        if len(sub) >= min_size and dfg.is_feasible(sub, max_inputs, max_outputs):
            feasible.append(frozenset(sub))
            found += 1
            if found >= per_root_cap or len(feasible) >= max_candidates:
                return False
        if len(sub) >= max_size:
            return True
        # ESU: pick each extension node in turn; the new extension set adds
        # exclusive neighbours (> root, not adjacent to current sub members
        # already processed).
        while extension:
            w = extension.pop()
            new_ext = list(extension)
            sub_and_ext = sub | set(extension) | {w}
            for u in adj[w]:
                if u > root and u not in sub_and_ext:
                    new_ext.append(u)
            sub.add(w)
            if not extend(sub, new_ext, root):
                return False
            sub.remove(w)
        return True

    for root in roots:
        if len(feasible) >= max_candidates:
            break
        visited = 0
        found = 0
        ext = [u for u in adj[root] if u > root]
        extend({root}, ext, root)
    if stats is not None:
        stats["visited"] = stats.get("visited", 0) + all_visited
        stats["feasible"] = stats.get("feasible", 0) + len(feasible)
    # Deduplicate (different roots cannot duplicate, but be safe) and order.
    unique = sorted(set(feasible), key=lambda s: (-len(s), sorted(s)))
    return unique


def _enumerate_bitset(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int,
    max_candidates: int,
    min_size: int,
    max_visited: int | None,
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """Bitset ESU with incremental feasibility and monotone-input pruning.

    Subgraphs, adjacency, ancestor/descendant closures and the growing
    extension set are all Python int bitmasks precomputed once per DFG
    (:meth:`DataFlowGraph.bitset_masks`).  Along the DFS path the engine
    threads four monotone accumulators — the union of member predecessor
    masks, the live-in operand total, and the ancestor/descendant closure
    unions — so each visited subgraph is checked with O(1) big-int
    operations plus an O(|S|) output scan:

    * inputs  = popcount(pred_union & ~S) + live_ins  (distinct external
      producers plus live-in operands);
    * convex  ⇔ (desc_union & anc_union) & ~S == 0  (a violation witness is
      exactly an outside node that is both a descendant and an ancestor of
      members);
    * outputs = members that are live-out or feed a consumer outside S.

    Pruning (Pozzi/Atasu style): external producers that can never join the
    subgraph — invalid nodes and ids below the ESU root — plus live-in
    operands only grow along a branch, so once they exceed ``max_inputs``
    the whole branch is infeasible and is cut.
    """
    m = dfg.bitset_masks()
    full = m.full
    valid = m.valid
    if valid == 0:
        return []
    adj = m.adj_valid
    pred = m.pred
    succ = m.succ
    anc = m.anc
    desc = m.desc
    live_out = m.live_out
    ext_inp = m.external_inputs
    invalid = full & ~valid

    roots = [n for n in range(len(adj)) if valid >> n & 1]
    feasible: list[int] = []
    total_budget = max_visited if max_visited is not None else 25 * max_candidates
    per_root_budget = max(200, total_budget // len(roots))
    per_root_cap = max(20, max_candidates // len(roots))
    visited = 0
    found = 0
    all_visited = 0
    # Prune accounting per constraint (local ints: near-free on the DFS).
    cut_budget = 0
    cut_inputs = 0
    cut_outputs = 0

    def extend(
        sub: int,
        size: int,
        extension: list[int],
        ext_mask: int,
        pred_union: int,
        live_ins: int,
        anc_union: int,
        desc_union: int,
        root: int,
        never: int,
        above_root: int,
    ) -> bool:
        """Returns False when this root's visit or candidate cap is hit."""
        nonlocal visited, found, all_visited
        nonlocal cut_budget, cut_inputs, cut_outputs
        visited += 1
        all_visited += 1
        if visited > per_root_budget:
            cut_budget += 1
            return False
        outside = full & ~sub
        ext_producers = pred_union & outside
        # Monotone bound: producers that can never be absorbed into the
        # subgraph (invalid or below the root) and live-in operands only
        # accumulate along this branch — cut it once they exceed the limit.
        if (ext_producers & never).bit_count() + live_ins > max_inputs:
            cut_inputs += 1
            return True
        if (
            size >= min_size
            and ext_producers.bit_count() + live_ins <= max_inputs
            and (desc_union & anc_union) & outside == 0
        ):
            outputs = 0
            rem = sub
            while rem:
                low = rem & -rem
                n = low.bit_length() - 1
                rem ^= low
                if live_out & low or succ[n] & outside:
                    outputs += 1
                    if outputs > max_outputs:
                        break
            if outputs <= max_outputs:
                feasible.append(sub)
                found += 1
                if found >= per_root_cap or len(feasible) >= max_candidates:
                    return False
            else:
                cut_outputs += 1
        if size >= max_size:
            return True
        while extension:
            w = extension.pop()
            wbit = 1 << w
            ext_mask &= ~wbit
            new_ext = list(extension)
            fresh = adj[w] & above_root & ~(sub | ext_mask | wbit)
            new_ext_mask = ext_mask | fresh
            while fresh:
                low = fresh & -fresh
                new_ext.append(low.bit_length() - 1)
                fresh ^= low
            if not extend(
                sub | wbit,
                size + 1,
                new_ext,
                new_ext_mask,
                pred_union | pred[w],
                live_ins + ext_inp[w],
                anc_union | anc[w],
                desc_union | desc[w],
                root,
                never,
                above_root,
            ):
                return False
        return True

    for root in roots:
        if len(feasible) >= max_candidates:
            break
        visited = 0
        found = 0
        above_root = full & ~((1 << (root + 1)) - 1)
        never = ((1 << root) - 1) | invalid
        ext_mask = adj[root] & above_root
        ext = []
        rem = ext_mask
        while rem:
            low = rem & -rem
            ext.append(low.bit_length() - 1)
            rem ^= low
        extend(
            1 << root,
            1,
            ext,
            ext_mask,
            pred[root],
            ext_inp[root],
            anc[root],
            desc[root],
            root,
            never,
            above_root,
        )
    if stats is not None:
        stats["visited"] = stats.get("visited", 0) + all_visited
        stats["feasible"] = stats.get("feasible", 0) + len(feasible)
        stats["pruned_visit_budget"] = (
            stats.get("pruned_visit_budget", 0) + cut_budget
        )
        stats["pruned_inputs"] = stats.get("pruned_inputs", 0) + cut_inputs
        stats["pruned_outputs"] = stats.get("pruned_outputs", 0) + cut_outputs
    masks_to_sets = {s for s in feasible}
    unique = [
        frozenset(n for n in range(full.bit_length()) if s >> n & 1)
        for s in masks_to_sets
    ]
    unique.sort(key=lambda s: (-len(s), sorted(s)))
    return unique


def enumerate_exhaustive(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    nodes: list[int] | None = None,
    min_size: int = 2,
    max_size: int | None = None,
) -> list[frozenset[int]]:
    """Enumerate *all* feasible subgraphs over *nodes* by subset search.

    Exponential in ``len(nodes)``; intended for ground-truth checks and tiny
    regions (roughly up to 18 nodes).

    Args:
        dfg: the dataflow graph.
        max_inputs / max_outputs: register-port constraints.
        nodes: restrict the search to these nodes (defaults to all valid
            nodes).
        min_size / max_size: candidate size bounds.

    Returns:
        All feasible candidate node sets (connected or not), largest first.
    """
    pool = sorted(set(nodes if nodes is not None else dfg.valid_nodes))
    pool = [n for n in pool if dfg.is_valid_node(n)]
    upper = max_size if max_size is not None else len(pool)
    feasible: list[frozenset[int]] = []
    for size in range(min_size, upper + 1):
        for combo in combinations(pool, size):
            if dfg.is_feasible(combo, max_inputs, max_outputs):
                feasible.append(frozenset(combo))
    feasible.sort(key=lambda s: (-len(s), sorted(s)))
    return feasible
