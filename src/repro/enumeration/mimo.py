"""MIMO (multiple-input multiple-output) candidate enumeration.

The number of convex subgraphs of a DFG is exponential in the worst case
(thesis Section 2.3.1), so practical identification bounds the search.  Two
enumerators are provided:

* :func:`enumerate_connected` — ESU-style enumeration of *connected* induced
  subgraphs without duplicates (each subgraph is generated exactly once from
  its minimum-id node), filtered by the I/O and convexity constraints, with
  size and count caps.  This is the production enumerator used to build
  candidate libraries.
* :func:`enumerate_exhaustive` — plain subset enumeration over a (small)
  node set; exact but exponential.  Used by tests as ground truth and for
  tiny regions.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.dfg import DataFlowGraph

__all__ = ["enumerate_connected", "enumerate_exhaustive"]


def _undirected_adjacency(
    dfg: DataFlowGraph, allowed: set[int] | None = None
) -> dict[int, set[int]]:
    pool = dfg.valid_nodes if allowed is None else [
        n for n in dfg.valid_nodes if n in allowed
    ]
    pool_set = set(pool)
    adj: dict[int, set[int]] = {n: set() for n in pool}
    for n in pool:
        for p in dfg.preds(n):
            if p in pool_set:
                adj[n].add(p)
                adj[p].add(n)
    return adj


def enumerate_connected(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int = 12,
    max_candidates: int = 20000,
    min_size: int = 2,
    max_visited: int | None = None,
) -> list[frozenset[int]]:
    """Enumerate feasible connected subgraphs of *dfg*.

    Uses the ESU scheme: for every valid node ``v`` (in increasing id order),
    enumerate exactly once every connected subgraph whose minimum node id is
    ``v`` by extending only with neighbours of id greater than ``v``.  Each
    enumerated subgraph is kept if it satisfies the input/output constraints
    and convexity.

    Args:
        dfg: the basic block's dataflow graph.
        max_inputs / max_outputs: register-port constraints.
        max_size: maximum number of operations in a candidate.
        max_candidates: stop after this many feasible candidates (the
            enumeration itself may visit more subgraphs).
        min_size: smallest candidate worth keeping (default 2; a singleton
            custom instruction cannot beat the native operation).
        max_visited: cap on subgraphs *visited* (feasible or not); defaults
            to ``25 x max_candidates``.  Bounds worst-case runtime on large
            dense blocks.

    Returns:
        Feasible candidate node sets, largest first.
    """
    adj = _undirected_adjacency(dfg)
    feasible: list[frozenset[int]] = []
    total_budget = max_visited if max_visited is not None else 25 * max_candidates
    roots = sorted(adj)
    if not roots:
        return []
    # Spread the visit budget across roots so large blocks are covered
    # end-to-end instead of exhausting the budget on the first few roots.
    per_root_budget = max(200, total_budget // len(roots))
    per_root_cap = max(20, max_candidates // len(roots))
    visited = 0
    found = 0

    def extend(sub: set[int], extension: list[int], root: int) -> bool:
        """Returns False when this root's visit or candidate cap is hit."""
        nonlocal visited, found
        visited += 1
        if visited > per_root_budget:
            return False
        if len(sub) >= min_size and dfg.is_feasible(sub, max_inputs, max_outputs):
            feasible.append(frozenset(sub))
            found += 1
            if found >= per_root_cap or len(feasible) >= max_candidates:
                return False
        if len(sub) >= max_size:
            return True
        # ESU: pick each extension node in turn; the new extension set adds
        # exclusive neighbours (> root, not adjacent to current sub members
        # already processed).
        while extension:
            w = extension.pop()
            new_ext = list(extension)
            sub_and_ext = sub | set(extension) | {w}
            for u in adj[w]:
                if u > root and u not in sub_and_ext:
                    new_ext.append(u)
            sub.add(w)
            if not extend(sub, new_ext, root):
                return False
            sub.remove(w)
        return True

    for root in roots:
        if len(feasible) >= max_candidates:
            break
        visited = 0
        found = 0
        ext = [u for u in adj[root] if u > root]
        extend({root}, ext, root)
    # Deduplicate (different roots cannot duplicate, but be safe) and order.
    unique = sorted(set(feasible), key=lambda s: (-len(s), sorted(s)))
    return unique


def enumerate_exhaustive(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    nodes: list[int] | None = None,
    min_size: int = 2,
    max_size: int | None = None,
) -> list[frozenset[int]]:
    """Enumerate *all* feasible subgraphs over *nodes* by subset search.

    Exponential in ``len(nodes)``; intended for ground-truth checks and tiny
    regions (roughly up to 18 nodes).

    Args:
        dfg: the dataflow graph.
        max_inputs / max_outputs: register-port constraints.
        nodes: restrict the search to these nodes (defaults to all valid
            nodes).
        min_size / max_size: candidate size bounds.

    Returns:
        All feasible candidate node sets (connected or not), largest first.
    """
    pool = sorted(set(nodes if nodes is not None else dfg.valid_nodes))
    pool = [n for n in pool if dfg.is_valid_node(n)]
    upper = max_size if max_size is not None else len(pool)
    feasible: list[frozenset[int]] = []
    for size in range(min_size, upper + 1):
        for combo in combinations(pool, size):
            if dfg.is_feasible(combo, max_inputs, max_outputs):
                feasible.append(frozenset(combo))
    feasible.sort(key=lambda s: (-len(s), sorted(s)))
    return feasible
