"""Candidate-library construction for whole programs.

Ties together profiling, region decomposition and MIMO enumeration: for each
*hot* basic block (a block whose profile weight is at least a fraction of the
program's total cycles — thesis Section 2.2), enumerate feasible candidates
and annotate them with the block's execution frequency.

Libraries are memoized through :mod:`repro.cache` keyed on the program's
structural fingerprint plus every enumeration parameter, so area/utilization
sweeps that revisit the same program skip enumeration entirely.
"""

from __future__ import annotations

import time

from repro import cache, jit, obs
from repro.enumeration.mimo import enumerate_connected
from repro.enumeration.patterns import CandidateLibrary, make_candidate
from repro.graphs.program import Program
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel

__all__ = ["build_candidate_library", "hot_block_indices"]


def hot_block_indices(program: Program, hot_threshold: float = 0.01) -> list[int]:
    """Indices of blocks contributing at least *hot_threshold* of cycles.

    The contribution of block *i* is ``frequency_i x sw_cycles_i`` over the
    program's total average cycles.
    """
    freq = program.profile()
    blocks = program.basic_blocks
    contrib = {
        i: freq.get(i, 0.0) * blocks[i].dfg.sw_cycles() for i in range(len(blocks))
    }
    total = sum(contrib.values())
    if total <= 0:
        return []
    hot = [i for i, c in contrib.items() if c / total >= hot_threshold]
    hot.sort(key=lambda i: -contrib[i])
    return hot


def build_candidate_library(
    program: Program,
    max_inputs: int = 4,
    max_outputs: int = 2,
    hot_threshold: float = 0.01,
    max_size: int = 12,
    max_candidates_per_block: int = 2000,
    include_disconnected: bool = False,
    max_disconnected_per_block: int = 200,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    engine: str = "bitset",
    use_cache: bool = True,
    stats: dict | None = None,
) -> CandidateLibrary:
    """Enumerate custom-instruction candidates for *program*.

    Args:
        program: the task's program model.
        max_inputs / max_outputs: register-port constraints (the thesis uses
            4 inputs / 2 outputs throughout).
        hot_threshold: minimum fraction of program cycles for a block to be
            analyzed.
        max_size: maximum operations per candidate.
        max_candidates_per_block: enumeration cap per basic block.
        include_disconnected: also pair independent connected candidates
            into disconnected MIMO candidates (thesis Section 2.3.1; their
            hardware latency is the max of the component paths).
        max_disconnected_per_block: pairing cap per block.
        model: the hardware cost model.
        engine: enumeration engine (see
            :func:`repro.enumeration.mimo.enumerate_connected`).
        use_cache: consult/populate the content-keyed artifact cache
            (:mod:`repro.cache`).
        stats: optional dict accumulating enumeration ``visited``/``feasible``
            counters (bypassed on cache hits).  Also receives
            ``enumerate_seconds`` — wall time spent inside
            :func:`enumerate_connected` alone, excluding candidate costing
            — so throughput rates compare engines on the enumeration work
            itself.

    Returns:
        A :class:`CandidateLibrary` with profitable candidates only, ordered
        by decreasing total gain.
    """
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.program_fingerprint(program),
            kind="library",
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            hot_threshold=hot_threshold,
            max_size=max_size,
            max_candidates_per_block=max_candidates_per_block,
            include_disconnected=include_disconnected,
            max_disconnected_per_block=max_disconnected_per_block,
            # Toolchain-dependent engines ("auto", "compiled") resolve to
            # different search orders per host; tag them so shared caches
            # never cross-serve artifacts (see jit.engine_cache_tag).
            model=(type(model).__name__, model.cycle_delay),
            engine=jit.engine_cache_tag(engine),
        )
        hit = cache.fetch_candidates(key)
        if hit is not None:
            return CandidateLibrary(hit)
    freq = program.profile()
    blocks = program.basic_blocks
    library = CandidateLibrary()
    enum_stats: dict = stats if stats is not None else {}
    before = {k: enum_stats.get(k, 0) for k in (
        "visited", "feasible", "pruned_visit_budget", "pruned_inputs",
        "pruned_outputs",
    )}
    enum_seconds = 0.0
    with obs.span("identify.enumerate", program=program.name, engine=engine):
        for i in hot_block_indices(program, hot_threshold):
            dfg = blocks[i].dfg
            t0 = time.perf_counter()
            node_sets = enumerate_connected(
                dfg,
                max_inputs=max_inputs,
                max_outputs=max_outputs,
                max_size=max_size,
                max_candidates=max_candidates_per_block,
                engine=engine,
                stats=enum_stats,
            )
            enum_seconds += time.perf_counter() - t0
            if include_disconnected:
                from repro.enumeration.disconnected import pair_disconnected

                node_sets = node_sets + pair_disconnected(
                    dfg,
                    node_sets[: max(20, max_disconnected_per_block // 4)],
                    max_inputs=max_inputs,
                    max_outputs=max_outputs,
                    max_pairs=max_disconnected_per_block,
                )
            for nodes in node_sets:
                cand = make_candidate(
                    dfg,
                    nodes,
                    block_index=i,
                    frequency=freq.get(i, 0.0),
                    model=model,
                )
                if cand.total_gain > 0:
                    library.add(cand)
    enum_stats["enumerate_seconds"] = (
        enum_stats.get("enumerate_seconds", 0.0) + enum_seconds
    )
    for k, v0 in before.items():
        delta = enum_stats.get(k, 0) - v0
        if delta:
            obs.inc(f"enumeration.{k}", delta)
    ordered = sorted(library, key=lambda c: (-c.total_gain, c.area))
    obs.inc("enumeration.candidates_kept", len(ordered))
    if use_cache and key is not None:
        cache.store_candidates(key, ordered)
    return CandidateLibrary(ordered)
