"""Array-native ESU enumeration (``engine="array"``).

Restructures the bitset engine's per-candidate DFS state into flat NumPy
arrays and walks the ESU tree **level-synchronously**: all subgraphs of
size ``s`` (across every root) live in one ``(S, n_words)`` uint64 bitset
matrix, and one batched pass scores every frontier extension of the level
at once — vectorized I/O-port counting via per-word popcounts on the
candidate/boundary matrices, convexity and feasibility as boolean mask
reductions, and the input/visit-budget pruning as single
``np.flatnonzero`` filters instead of per-candidate Python branches.

State threaded per level (mirroring the bitset DFS accumulators):

* ``sub``/``pred``/``anc``/``desc`` — ``(S, n_words)`` uint64 rows: the
  subgraph and the unions of member predecessor / ancestor / descendant
  masks;
* ``live`` — live-in operand totals, ``root`` — per-state ESU root index
  (selects the per-root ``never``/``above_root`` pruning rows);
* the ESU extension lists in fused CSR form (``ext_csr``/``ext_off``) with
  the exact order the bitset engine maintains — children pop from the end
  and keep the list prefix before their position.  Each CSR slot carries
  both the extension value and its exclusive prefix-OR mask (the "kept
  siblings" ``ext_mask`` the DFS would hold when popping that slot); the
  masks are threaded incrementally — copied with the kept prefix, extended
  per fresh bit — so no segmented scan is ever recomputed.

Each level is scored (input-prune + feasibility) **at child-build time**,
so the extension CSR — the most expensive per-level structure — is only
constructed for *surviving* states: input-pruned children, children of
capped/killed roots, dead-end states with empty extension lists, and the
entire deepest level (``size == max_size``) never pay for one.

**Equivalence contract** (asserted by
``tests/test_enumeration_differential.py``): when the visit budget and the
candidate caps do not bind, the array engine generates exactly the tree
the bitset engine walks — identical candidate sets *and* identical
``visited``/``feasible``/``pruned_*`` counters; the candidate set then
also equals the reference engine's.  Under *binding* budgets the engines
diverge (the DFS spends its budget depth-first, the level walk
breadth-first) the same way the bitset engine already diverges from the
reference; each root's visit budget, its candidate cap and the global
candidate cap are enforced deterministically in the level's flat state
order, so array results stay reproducible run to run.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import npbits
from repro.graphs.dfg import DataFlowGraph, DFGMasks

__all__ = [
    "enumerate_array",
    "canonical_candidates",
    "ARRAY_MIN_NODES",
    "ARRAY_MAX_NODES",
]

#: Hybrid dispatch threshold (empirical): below this many DFG nodes the
#: per-level NumPy call overhead outweighs the batching win and the bitset
#: DFS is faster, so ``enumerate_connected(engine="array")`` delegates tiny
#: blocks to the bitset kernel (bit-identical whenever budgets/caps do not
#: bind).  Tests pin it to 0 to drive the array kernel on small graphs.
ARRAY_MIN_NODES = 24

#: Upper hybrid dispatch threshold (empirical): at and above this many DFG
#: nodes the level frontier's bitset matrices (``n_words`` grows with the
#: block, the frontier with the budget) outgrow the cache and the batched
#: walk loses to the bitset DFS.  The measured wall-clock crossover on the
#: scalability sweep sits between 2000 and 3000 ops (at 2000 the walk is
#: at parity in wall time while still ~25% cheaper per candidate; at 3000
#: it clearly loses both ways), so blocks of 1536+ ops — the next
#: word-aligned step safely below the parity point — delegate to the
#: bitset kernel and ``engine="array"`` stays within noise of bitset at
#: every block size (guarded by ``benchmarks/test_scalability.py``).  The
#: previous cap of 768 was a dead zone: it delegated 768–1500-op blocks
#: where the batched walk actually wins 2x+ per candidate.  Real hot
#: blocks are tens to a few hundred ops; blocks this large are
#: budget-bound synthetic stress cases where the two engines already
#: return different (deterministic) candidate sets.
ARRAY_MAX_NODES = 1536


class _ArrayConsts:
    """Per-DFG constant matrices for the array engine (cached per masks)."""

    def __init__(self, dfg: DataFlowGraph) -> None:
        m: DFGMasks = dfg.bitset_masks()
        self.masks = m
        n = len(dfg)
        self.n = n
        W = npbits.n_words(n)
        self.W = W
        self.PRED = npbits.pack_masks(m.pred, W)
        self.SUCC = npbits.pack_masks(m.succ, W)
        self.ANC = npbits.pack_masks(m.anc, W)
        self.DESC = npbits.pack_masks(m.desc, W)
        self.ADJ = npbits.pack_masks(m.adj_valid, W)
        self.BIT = npbits.bit_rows(n, W)
        self.EXT = np.array(m.external_inputs, dtype=np.int64)
        self.full_row = npbits.pack_masks([m.full], W)[0]
        live_row = npbits.pack_masks([m.live_out], W)
        self.live_flag = npbits.unpack_bits(live_row, n)[0].astype(bool)
        valid_bits = npbits.unpack_bits(
            npbits.pack_masks([m.valid], W), n
        )[0]
        self.roots = np.flatnonzero(valid_bits).astype(np.int64)
        invalid_row = npbits.pack_masks([m.full & ~m.valid], W)[0]
        self.NEVER = (
            npbits.low_mask_rows(self.roots, W) | invalid_row
        )
        self.ABOVE = (
            ~npbits.low_mask_rows(self.roots + 1, W) & self.full_row
        )
        # Fused accumulator layout: one (n, 4W) matrix so a child batch is
        # built with a single gather + OR instead of four of each.  Column
        # blocks: [sub-bit | pred-union | anc-union | desc-union].
        self.CMB = np.hstack([self.BIT, self.PRED, self.ANC, self.DESC])
        # LOWM[b] = all bits strictly below b — turns "OR of the first k
        # ascending set bits of a row" into ``row & LOWM[k-th bit]``.
        self.LOWM = npbits.low_mask_rows(np.arange(n, dtype=np.int64), W)


_CONST_CACHE: "weakref.WeakKeyDictionary[DataFlowGraph, _ArrayConsts]" = (
    weakref.WeakKeyDictionary()
)


def _get_consts(dfg: DataFlowGraph) -> _ArrayConsts:
    c = _CONST_CACHE.get(dfg)
    if c is None or c.masks is not dfg.bitset_masks():
        c = _ArrayConsts(dfg)
        _CONST_CACHE[dfg] = c
    return c


def _sorted_run_ranks(values: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element within its run of equal values.

    *values* must be sorted (the level's root column stays ascending by
    construction), so ranks are a linear run-boundary scan — no argsort.
    """
    n = values.shape[0]
    idx = np.arange(n, dtype=np.int64)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    is_start[1:] = values[1:] != values[:-1]
    starts = idx[is_start]
    run_lens = np.diff(np.concatenate((starts, [n])))
    return idx - np.repeat(starts, run_lens)


def _ramp(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0-1, 0..l1-1, ...]`` for the segment *lengths* (may be 0)."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def _output_counts(
    c: _ArrayConsts, sub_rows: np.ndarray, outside_rows: np.ndarray
) -> np.ndarray:
    """Output-port counts for a batch of subgraphs.

    A member is an output when its value is live-out of the block or some
    consumer lies outside the subgraph; the per-member external-successor
    test is one gather + AND over the packed word rows.
    """
    B = sub_rows.shape[0]
    if B == 0:
        return np.zeros(0, dtype=np.int64)
    members, _ranks = npbits.set_bits_csr(sub_rows)
    rows = np.arange(B, dtype=np.int64).repeat(
        npbits.popcount_rows(sub_rows)
    )
    ext = npbits.nonzero_rows(
        c.SUCC.take(members, axis=0) & outside_rows.take(rows, axis=0)
    )
    is_out = ext | c.live_flag[members]
    return np.bincount(rows[is_out], minlength=B).astype(np.int64)


def canonical_candidates(rows: np.ndarray) -> list[frozenset[int]]:
    """Dedupe + canonically order a stacked matrix of candidate bitsets.

    Shared finishing pass of the array and compiled engines: unique rows
    (popped siblings can re-enter via fresh bits, so the walks can
    revisit a subgraph — the bitset engine carries the same
    belt-and-braces set), then the engines' canonical order (largest
    first, lexicographic ids inside a size).  ``set_bits_csr`` emits each
    row's ids ascending, so the sort key is the extracted segment itself
    — no per-candidate ``sorted()``.
    """
    rows = np.unique(rows, axis=0)
    ids, _ranks = npbits.set_bits_csr(rows)
    bounds = np.cumsum(npbits.popcount_rows(rows))
    ids_list = ids.tolist()
    items: list[list[int]] = []
    lo = 0
    for hi in bounds.tolist():
        items.append(ids_list[lo:hi])
        lo = hi
    items.sort(key=lambda seg: (-len(seg), seg))
    return [frozenset(seg) for seg in items]


def _rows_to_sets(rows: np.ndarray) -> list[frozenset[int]]:
    """Each uint64 bitset row to its ``frozenset`` of node ids (batched)."""
    ids, _ranks = npbits.set_bits_csr(rows)
    bounds = np.cumsum(npbits.popcount_rows(rows))
    ids_list = ids.tolist()
    out: list[frozenset[int]] = []
    lo = 0
    for hi in bounds.tolist():
        out.append(frozenset(ids_list[lo:hi]))
        lo = hi
    return out


def enumerate_array(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    max_size: int,
    max_candidates: int,
    min_size: int,
    max_visited: int | None,
    stats: dict | None = None,
) -> list[frozenset[int]]:
    """Array-native ESU enumeration over *dfg* (see module docstring)."""
    c = _get_consts(dfg)
    R = c.roots.shape[0]
    if R == 0:
        return []
    total_budget = max_visited if max_visited is not None else 25 * max_candidates
    per_root_budget = max(200, total_budget // R)
    per_root_cap = max(20, max_candidates // R)

    visited_per_root = np.zeros(R, dtype=np.int64)
    found_per_root = np.zeros(R, dtype=np.int64)
    alive_root = np.ones(R, dtype=bool)
    feasible_rows: list[np.ndarray] = []
    n_feasible = 0
    all_visited = 0
    cut_budget = 0
    cut_inputs = 0
    cut_outputs = 0
    W = c.W

    def prune_and_score(
        state: np.ndarray, live: np.ndarray, root_idx: np.ndarray, size: int
    ) -> np.ndarray:
        """Input-prune + feasibility scoring for one level's state batch.

        Returns the monotone input-prune mask; feasible candidates are
        recorded (capped per root / globally, in flat state order — the
        same order the DFS visits this level's nodes).
        """
        nonlocal n_feasible, cut_inputs, cut_outputs, found_per_root
        sub = state[:, :W]
        pred = state[:, W : 2 * W]
        # Garbage bits past ``n`` in ``not_sub``'s last word are harmless:
        # every constant row (PRED/SUCC/ANC/DESC) is a subset of ``full``,
        # so the ANDs below clear them — no ``& full_row`` pass needed.
        not_sub = ~sub
        ext_prod = pred & not_sub
        never_cnt = (
            npbits.popcount_rows(ext_prod & c.NEVER.take(root_idx, axis=0))
            + live
        )
        pruned_in = never_cnt > max_inputs
        cut_inputs += int(pruned_in.sum())
        if size < min_size:
            return pruned_in
        # Feasibility narrows fast (most states fail the input-port count),
        # so each test only touches the survivors of the previous one.
        ok1 = (~pruned_in).nonzero()[0]
        if not ok1.size:
            return pruned_in
        inputs_ok = (
            npbits.popcount_rows(ext_prod.take(ok1, axis=0)) + live[ok1]
            <= max_inputs
        )
        ok2 = ok1[inputs_ok]
        if not ok2.size:
            return pruned_in
        anc = state[:, 2 * W : 3 * W]
        desc = state[:, 3 * W :]
        convex = ~npbits.nonzero_rows(
            anc.take(ok2, axis=0)
            & desc.take(ok2, axis=0)
            & not_sub.take(ok2, axis=0)
        )
        check_idx = ok2[convex]
        if not check_idx.size:
            return pruned_in
        outs = _output_counts(
            c,
            sub.take(check_idx, axis=0),
            not_sub.take(check_idx, axis=0),
        )
        ok = outs <= max_outputs
        cut_outputs += int((~ok).sum())
        cand_idx = check_idx[ok]
        if not cand_idx.size:
            return pruned_in
        cand_roots = root_idx[cand_idx]
        new_counts = np.bincount(cand_roots, minlength=R)
        if (
            n_feasible + cand_idx.size < max_candidates
            and int((found_per_root + new_counts).max()) < per_root_cap
            and alive_root[cand_roots].all()
        ):
            feasible_rows.append(sub.take(cand_idx, axis=0))
            n_feasible += int(cand_idx.size)
            found_per_root += new_counts
        else:
            # Caps consume the level in flat state order (a short loop:
            # it only runs when a cap is binding).
            accept = np.zeros(cand_idx.shape[0], dtype=bool)
            for k, r in enumerate(cand_roots.tolist()):
                if not alive_root[r]:
                    continue
                accept[k] = True
                n_feasible += 1
                found_per_root[r] += 1
                if found_per_root[r] >= per_root_cap:
                    alive_root[r] = False
                if n_feasible >= max_candidates:
                    alive_root[:] = False
                    break
            feasible_rows.append(sub.take(cand_idx[accept], axis=0))
        return pruned_in

    def finish() -> list[frozenset[int]]:
        if stats is not None:
            stats["visited"] = stats.get("visited", 0) + all_visited
            stats["feasible"] = stats.get("feasible", 0) + n_feasible
            stats["pruned_visit_budget"] = (
                stats.get("pruned_visit_budget", 0) + cut_budget
            )
            stats["pruned_inputs"] = stats.get("pruned_inputs", 0) + cut_inputs
            stats["pruned_outputs"] = (
                stats.get("pruned_outputs", 0) + cut_outputs
            )
        if not n_feasible:
            return []
        return canonical_candidates(np.concatenate(feasible_rows, axis=0))

    # --- level 1: one state per root (always within its visit budget) ---
    root_idx = np.arange(R, dtype=np.int64)
    state = c.CMB.take(c.roots, axis=0)
    live = c.EXT[c.roots]
    visited_per_root[:] = 1
    all_visited += R
    size = 1
    pruned_in = prune_and_score(state, live, root_idx, size)
    if size >= max_size or not alive_root.any():
        return finish()
    keep = np.flatnonzero(~pruned_in & alive_root[root_idx])
    if not keep.size:
        return finish()
    state = state.take(keep, axis=0)
    live = live[keep]
    root_idx = root_idx[keep]
    ext_rows = c.ADJ.take(c.roots[root_idx], axis=0) & c.ABOVE.take(root_idx, axis=0)
    ext_len = npbits.popcount_rows(ext_rows)
    nz = np.flatnonzero(ext_len > 0)
    if not nz.size:
        return finish()
    if nz.size < state.shape[0]:
        state = state.take(nz, axis=0)
        live = live[nz]
        root_idx = root_idx[nz]
        ext_rows = ext_rows.take(nz, axis=0)
        ext_len = ext_len[nz]
    ext_vals, _r = npbits.set_bits_csr(ext_rows)
    ext_off = np.concatenate(([0], np.cumsum(ext_len)))
    owner = np.repeat(
        np.arange(state.shape[0], dtype=np.int64), ext_len
    )
    ext_csr = np.empty((ext_vals.shape[0], 1 + W), dtype=np.uint64)
    ext_csr[:, 0] = ext_vals
    ext_csr[:, 1:] = ext_rows.take(owner, axis=0) & c.LOWM.take(ext_vals, axis=0)

    while True:
        # --- expansion: batch-build every child of the level ---
        S = state.shape[0]
        lens = ext_len
        child_par = np.arange(S, dtype=np.int64).repeat(lens)
        # Children pop from the end of the extension list: descending j.
        child_j = lens.repeat(lens) - 1 - _ramp(lens)
        n_children = child_par.shape[0]

        # Per-root visit-budget admission (flat child order), before any
        # accumulator work is spent on rejected states.  Skipped entirely
        # when no root's budget can bind at this level.
        if int(visited_per_root.max()) + n_children <= per_root_budget:
            all_visited += n_children
            # The root column is sorted, so the per-root child counts are
            # run-segment sums — no per-child root column needed here.
            rs = np.empty(S, dtype=bool)
            rs[0] = True
            rs[1:] = root_idx[1:] != root_idx[:-1]
            run_starts = rs.nonzero()[0]
            visited_per_root[root_idx[run_starts]] += np.add.reduceat(
                lens, run_starts
            )
            par = child_par
            j = child_j
        else:
            child_root = root_idx.take(child_par)
            ranks = _sorted_run_ranks(child_root)
            vnum = visited_per_root[child_root] + ranks + 1
            admit = vnum <= per_root_budget
            over_first = vnum == per_root_budget + 1
            n_admit = int(admit.sum())
            n_over = int(over_first.sum())
            all_visited += n_admit + n_over
            cut_budget += n_over
            if n_over:
                alive_root[child_root[over_first]] = False
            visited_per_root += np.bincount(
                child_root[admit | over_first], minlength=R
            )
            if n_admit == 0:
                break
            admit_idx = admit.nonzero()[0]
            par = child_par.take(admit_idx)
            j = child_j.take(admit_idx)

        # The popped value and its "kept siblings" mask come straight from
        # the CSR slot — the prefix masks are threaded, not recomputed.
        slot_rows = ext_csr.take(ext_off.take(par) + j, axis=0)
        w = slot_rows[:, 0].astype(np.int64)
        p_keep = slot_rows[:, 1:]

        new_state = state.take(par, axis=0) | c.CMB.take(w, axis=0)
        new_live = live[par] + c.EXT[w]
        new_root = root_idx[par]
        size += 1

        pruned_in = prune_and_score(new_state, new_live, new_root, size)
        if size >= max_size or not alive_root.any():
            break

        # --- survivors only: filter before the extension CSR is built ---
        kidx = (~pruned_in & alive_root.take(new_root)).nonzero()[0]
        if not kidx.size:
            break
        state = new_state.take(kidx, axis=0)
        live = new_live[kidx]
        root_idx = new_root[kidx]
        j_k = j[kidx]
        p_keep = p_keep.take(kidx, axis=0)
        par_k = par[kidx]
        fresh = (
            c.ADJ.take(w[kidx], axis=0)
            & c.ABOVE.take(root_idx, axis=0)
            & ~(state[:, :W] | p_keep)
        )
        fresh_cnt = npbits.popcount_rows(fresh)
        new_len = j_k + fresh_cnt
        if not new_len.all():
            # Dead ends (empty extension list) cannot expand — drop them.
            nzi = (new_len > 0).nonzero()[0]
            if not nzi.size:
                break
            state = state.take(nzi, axis=0)
            live = live[nzi]
            root_idx = root_idx[nzi]
            j_k = j_k[nzi]
            p_keep = p_keep.take(nzi, axis=0)
            par_k = par_k[nzi]
            fresh = fresh.take(nzi, axis=0)
            fresh_cnt = fresh_cnt[nzi]
            new_len = new_len[nzi]

        # Child extension CSR: kept prefix slots, then fresh ids ascending.
        new_off = np.concatenate(([0], new_len.cumsum()))
        new_E = int(new_off[-1])
        new_csr = np.empty((new_E, 1 + W), dtype=np.uint64)
        pre_ramp = _ramp(j_k)
        pre_dst = new_off[:-1].repeat(j_k) + pre_ramp
        pre_src = ext_off.take(par_k).repeat(j_k) + pre_ramp
        new_csr[pre_dst] = ext_csr.take(pre_src, axis=0)
        fresh_ids, fresh_rank = npbits.set_bits_csr(fresh)
        if fresh_ids.size:
            fr_rows = np.arange(new_len.shape[0], dtype=np.int64).repeat(
                fresh_cnt
            )
            fr_dst = new_off.take(fr_rows) + j_k.take(fr_rows) + fresh_rank
            # One fused per-child gather for both the kept-prefix mask and
            # the fresh row (half the advanced-indexing rounds).
            combo = np.empty((p_keep.shape[0], 2 * W), dtype=np.uint64)
            combo[:, :W] = p_keep
            combo[:, W:] = fresh
            g = combo.take(fr_rows, axis=0)
            fr_block = np.empty((fresh_ids.shape[0], 1 + W), dtype=np.uint64)
            fr_block[:, 0] = fresh_ids
            # Fresh slots extend the kept-prefix mask with the fresh bits
            # before them (ascending, so "row & bits-below" selects them).
            fr_block[:, 1:] = g[:, :W] | (
                g[:, W:] & c.LOWM.take(fresh_ids, axis=0)
            )
            new_csr[fr_dst] = fr_block

        ext_csr, ext_off, ext_len = new_csr, new_off, new_len

    return finish()
