"""Maximal MISO (multiple-input single-output) pattern identification.

Implements the linear-time greedy algorithm of thesis Section 2.3.1
(after [82]): starting from each potential sink node of the dataflow graph,
grow the pattern upward by absorbing producer nodes as long as the pattern
keeps a single output and does not exceed the input constraint.  Because the
grown pattern is a "cone" feeding one sink, convexity holds by construction
once the single-output property is maintained.
"""

from __future__ import annotations

from repro.graphs.dfg import DataFlowGraph

__all__ = ["maximal_misos"]


def maximal_misos(dfg: DataFlowGraph, max_inputs: int) -> list[frozenset[int]]:
    """Identify maximal MISO patterns of *dfg*.

    Args:
        dfg: the basic block's dataflow graph.
        max_inputs: register-port input constraint ``Nin``.

    Returns:
        A list of node sets, one per distinct maximal MISO with more than one
        node, each feasible under (``max_inputs``, 1 output).
    """
    patterns: set[frozenset[int]] = set()
    for sink in dfg.nodes:
        if not dfg.is_valid_node(sink):
            continue
        # Only consider sinks whose value leaves the candidate (always true
        # for the cone rooted at the sink itself).
        cone = {sink}
        grown = True
        while grown:
            grown = False
            # Try absorbing any producer of the cone, largest first for
            # determinism.
            frontier = sorted(
                {
                    p
                    for n in cone
                    for p in dfg.preds(n)
                    if p not in cone and dfg.is_valid_node(p)
                },
                reverse=True,
            )
            for p in frontier:
                trial = cone | {p}
                io = dfg.io_count(trial)
                if io.outputs <= 1 and io.inputs <= max_inputs:
                    cone = trial
                    grown = True
        if len(cone) > 1 and dfg.is_feasible(cone, max_inputs, 1):
            patterns.add(frozenset(cone))
    return sorted(patterns, key=lambda s: (-len(s), sorted(s)))
