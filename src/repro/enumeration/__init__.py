"""Custom-instruction identification (enumeration) substrate."""

from repro.enumeration.disconnected import components_independent, pair_disconnected
from repro.enumeration.library import build_candidate_library, hot_block_indices
from repro.enumeration.mimo import (
    enumerate_connected,
    enumerate_exhaustive,
    resolve_auto_engine,
)
from repro.enumeration.miso import maximal_misos
from repro.enumeration.patterns import Candidate, CandidateLibrary, make_candidate

__all__ = [
    "components_independent",
    "pair_disconnected",
    "build_candidate_library",
    "hot_block_indices",
    "enumerate_connected",
    "enumerate_exhaustive",
    "resolve_auto_engine",
    "maximal_misos",
    "Candidate",
    "CandidateLibrary",
    "make_candidate",
]
