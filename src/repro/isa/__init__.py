"""Instruction-set and hardware cost modelling substrate."""

from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel, SubgraphCost
from repro.isa.opcodes import OP_TABLE, OpInfo, Opcode, is_valid_op, op_info

__all__ = [
    "DEFAULT_COST_MODEL",
    "HardwareCostModel",
    "SubgraphCost",
    "OP_TABLE",
    "OpInfo",
    "Opcode",
    "is_valid_op",
    "op_info",
]
