"""Hardware cost estimation for custom-instruction candidate subgraphs.

The thesis (Section 5.2.3) estimates, for a candidate subgraph ``S`` of a
dataflow graph:

* *software latency* ``sw_ltc(S)`` — sum of the base-processor cycle counts of
  the constituent operations (they execute sequentially on a single-issue
  core);
* *hardware latency* ``hw_ltc(S)`` — the critical-path combinational delay of
  the subgraph, rounded up to whole processor cycles (normalized to a MAC);
* *area* — the sum of the constituent operations' hardware areas (adders).

The per-execution *gain* of implementing ``S`` as a custom instruction is
``sw_ltc(S) - hw_cycles(S)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.isa.opcodes import Opcode, op_info

__all__ = ["HardwareCostModel", "SubgraphCost"]


@dataclass(frozen=True)
class SubgraphCost:
    """Cost summary of one candidate subgraph.

    Attributes:
        sw_cycles: total software latency in processor cycles.
        hw_delay: critical-path delay in MAC-normalized units.
        hw_cycles: hardware latency rounded up to whole cycles (minimum 1).
        area: silicon area in adder units.
        gain: cycles saved per execution (``sw_cycles - hw_cycles``).
    """

    sw_cycles: int
    hw_delay: float
    hw_cycles: int
    area: float

    @property
    def gain(self) -> int:
        return self.sw_cycles - self.hw_cycles


class HardwareCostModel:
    """Estimates software/hardware cost of operation subgraphs.

    Args:
        cycle_delay: combinational delay budget of one processor cycle, in
            MAC-normalized units.  The thesis normalizes a MAC to exactly one
            cycle at 120 MHz, so the default is 1.0.
    """

    def __init__(self, cycle_delay: float = 1.0) -> None:
        if cycle_delay <= 0:
            raise ValueError("cycle_delay must be positive")
        self.cycle_delay = cycle_delay

    # ------------------------------------------------------------------
    # Per-operation primitives
    # ------------------------------------------------------------------
    def sw_cycles(self, op: Opcode) -> int:
        """Software latency of a single operation, in cycles."""
        return op_info(op).sw_cycles

    def hw_delay(self, op: Opcode) -> float:
        """Combinational delay of a single operation."""
        return op_info(op).hw_delay

    def area(self, op: Opcode) -> float:
        """Hardware area of a single operation, in adder units."""
        return op_info(op).hw_area

    # ------------------------------------------------------------------
    # Subgraph costs
    # ------------------------------------------------------------------
    def subgraph_sw_cycles(self, ops: Iterable[Opcode]) -> int:
        """Total sequential software latency of a set of operations."""
        return sum(op_info(op).sw_cycles for op in ops)

    def subgraph_area(self, ops: Iterable[Opcode]) -> float:
        """Total area of a set of operations (additive model)."""
        return sum(op_info(op).hw_area for op in ops)

    def critical_path_delay(
        self,
        nodes: Iterable[int],
        preds: Mapping[int, Iterable[int]],
        node_op: Mapping[int, Opcode],
    ) -> float:
        """Critical-path combinational delay of a subgraph.

        Args:
            nodes: subgraph node ids in *topological order*.
            preds: predecessor map restricted to the subgraph.
            node_op: opcode of each node.

        Returns:
            The longest-path delay through the subgraph.
        """
        finish: dict[int, float] = {}
        longest = 0.0
        for node in nodes:
            start = 0.0
            for p in preds.get(node, ()):
                t = finish.get(p)
                if t is not None and t > start:
                    start = t
            end = start + op_info(node_op[node]).hw_delay
            finish[node] = end
            if end > longest:
                longest = end
        return longest

    def hw_cycles(self, delay: float) -> int:
        """Convert a combinational delay to whole processor cycles (>= 1)."""
        if delay <= 0:
            return 1
        return max(1, math.ceil(delay / self.cycle_delay - 1e-9))

    def subgraph_cost(
        self,
        nodes: list[int],
        preds: Mapping[int, Iterable[int]],
        node_op: Mapping[int, Opcode],
    ) -> SubgraphCost:
        """Full :class:`SubgraphCost` for a topologically ordered subgraph."""
        ops = [node_op[n] for n in nodes]
        delay = self.critical_path_delay(nodes, preds, node_op)
        return SubgraphCost(
            sw_cycles=self.subgraph_sw_cycles(ops),
            hw_delay=delay,
            hw_cycles=self.hw_cycles(delay),
            area=self.subgraph_area(ops),
        )


#: Module-level default model (MAC-normalized, 1 cycle per MAC delay).
DEFAULT_COST_MODEL = HardwareCostModel()
