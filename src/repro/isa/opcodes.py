"""Primitive operation set of the base processor.

The thesis customizes a single-issue in-order embedded core (Xtensa-like).
Custom-instruction identification and hardware estimation only need, per
primitive opcode:

* ``sw_cycles`` — latency of the operation on the base processor pipeline,
  in processor cycles;
* ``hw_delay`` — propagation delay of a combinational hardware implementation,
  normalized so that a 32-bit multiply-accumulate (MAC) unit has delay 1.0
  (the thesis normalizes custom-instruction latency against a MAC that takes
  one cycle at 120 MHz);
* ``hw_area`` — silicon area of the hardware implementation, normalized to the
  area of a 32-bit ripple-carry adder (the thesis reports hardware area "in
  terms of the number of adders").

Values are representative of a 0.18 micron standard-cell library (the thesis
uses Synopsys synthesis with 0.18 micron CMOS cells); the algorithms only
require that the model is additive in area and that hardware delay composes
along the critical path.

Opcodes that touch memory or transfer control (``LOAD``, ``STORE``,
``BRANCH``, ``CALL``, ``RETURN``) are *invalid* for inclusion in a custom
instruction: the CFU has no memory port and custom instructions must execute
atomically.  Invalid nodes partition a basic block's dataflow graph into
*regions* (thesis Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Opcode", "OpInfo", "OP_TABLE", "op_info", "is_valid_op"]


class Opcode(str, Enum):
    """Primitive machine operations of the base instruction set."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAC = "mac"
    DIV = "div"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    # Logic
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # Shifts
    SHL = "shl"
    SHR = "shr"
    ROTL = "rotl"
    ROTR = "rotr"
    # Comparison / selection
    CMP = "cmp"
    SELECT = "select"
    # Data movement (register-to-register; valid in a CI)
    MOV = "mov"
    SEXT = "sext"
    ZEXT = "zext"
    # Constant materialization
    CONST = "const"
    # Invalid-for-CI operations
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpInfo:
    """Static cost/validity description of one primitive opcode.

    Attributes:
        sw_cycles: base-processor latency in cycles.
        hw_delay: combinational delay, normalized to a 1-cycle MAC.
        hw_area: silicon area, normalized to one 32-bit adder.
        valid: whether the operation may be part of a custom instruction.
        arity: number of data inputs the operation consumes.
    """

    sw_cycles: int
    hw_delay: float
    hw_area: float
    valid: bool = True
    arity: int = 2


#: Cost table for every primitive opcode.  Delay/area ratios follow typical
#: 0.18 micron synthesis results: a multiplier is ~18x an adder in area and
#: ~2.5x in delay; logic ops are cheap and fast; shifts by variable amounts
#: cost a barrel shifter (~2 adders).
OP_TABLE: dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo(sw_cycles=1, hw_delay=0.35, hw_area=1.0),
    Opcode.SUB: OpInfo(sw_cycles=1, hw_delay=0.35, hw_area=1.0),
    Opcode.MUL: OpInfo(sw_cycles=3, hw_delay=0.85, hw_area=18.0),
    Opcode.MAC: OpInfo(sw_cycles=3, hw_delay=1.00, hw_area=19.0, arity=3),
    Opcode.DIV: OpInfo(sw_cycles=18, hw_delay=3.20, hw_area=30.0),
    Opcode.NEG: OpInfo(sw_cycles=1, hw_delay=0.20, hw_area=0.6, arity=1),
    Opcode.ABS: OpInfo(sw_cycles=1, hw_delay=0.30, hw_area=1.2, arity=1),
    Opcode.MIN: OpInfo(sw_cycles=1, hw_delay=0.45, hw_area=1.5),
    Opcode.MAX: OpInfo(sw_cycles=1, hw_delay=0.45, hw_area=1.5),
    Opcode.AND: OpInfo(sw_cycles=1, hw_delay=0.05, hw_area=0.15),
    Opcode.OR: OpInfo(sw_cycles=1, hw_delay=0.05, hw_area=0.15),
    Opcode.XOR: OpInfo(sw_cycles=1, hw_delay=0.07, hw_area=0.25),
    Opcode.NOT: OpInfo(sw_cycles=1, hw_delay=0.03, hw_area=0.08, arity=1),
    Opcode.SHL: OpInfo(sw_cycles=1, hw_delay=0.25, hw_area=2.0),
    Opcode.SHR: OpInfo(sw_cycles=1, hw_delay=0.25, hw_area=2.0),
    Opcode.ROTL: OpInfo(sw_cycles=1, hw_delay=0.28, hw_area=2.2),
    Opcode.ROTR: OpInfo(sw_cycles=1, hw_delay=0.28, hw_area=2.2),
    Opcode.CMP: OpInfo(sw_cycles=1, hw_delay=0.30, hw_area=0.9),
    Opcode.SELECT: OpInfo(sw_cycles=1, hw_delay=0.10, hw_area=0.5, arity=3),
    Opcode.MOV: OpInfo(sw_cycles=1, hw_delay=0.01, hw_area=0.02, arity=1),
    Opcode.SEXT: OpInfo(sw_cycles=1, hw_delay=0.02, hw_area=0.05, arity=1),
    Opcode.ZEXT: OpInfo(sw_cycles=1, hw_delay=0.02, hw_area=0.05, arity=1),
    Opcode.CONST: OpInfo(sw_cycles=1, hw_delay=0.00, hw_area=0.0, arity=0),
    Opcode.LOAD: OpInfo(sw_cycles=2, hw_delay=0.0, hw_area=0.0, valid=False, arity=1),
    Opcode.STORE: OpInfo(sw_cycles=2, hw_delay=0.0, hw_area=0.0, valid=False, arity=2),
    Opcode.BRANCH: OpInfo(sw_cycles=2, hw_delay=0.0, hw_area=0.0, valid=False, arity=1),
    Opcode.CALL: OpInfo(sw_cycles=4, hw_delay=0.0, hw_area=0.0, valid=False, arity=0),
    Opcode.RETURN: OpInfo(sw_cycles=2, hw_delay=0.0, hw_area=0.0, valid=False, arity=0),
}


def op_info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` cost record for *op*."""
    return OP_TABLE[op]


def is_valid_op(op: Opcode) -> bool:
    """Return True if *op* may appear inside a custom instruction."""
    return OP_TABLE[op].valid
