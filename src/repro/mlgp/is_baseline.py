"""Iterative Selection (IS) baseline custom-instruction generator.

Re-implements the state-of-the-art comparator of thesis Section 5.3 (Pozzi,
Atasu & Ienne [81]): per iteration, identify the single best (maximum-gain)
feasible subgraph over the not-yet-covered nodes of the DFG — the "optimal
single cut" — commit it, remove its nodes from consideration, and repeat
while a profitable instruction exists.  Identification enumerates feasible
connected subgraphs over the remaining nodes, which is what makes IS slow on
large basic blocks (thesis Figure 5.5: IS needs thousands of seconds on
``3des`` while MLGP finishes in seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.enumeration.mimo import _undirected_adjacency  # shared adjacency
from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel

__all__ = ["IsStep", "iterative_selection"]


@dataclass(frozen=True)
class IsStep:
    """One IS iteration: the custom instruction committed and bookkeeping."""

    nodes: frozenset[int]
    gain: float
    area: float
    elapsed: float


def _best_single_cut(
    dfg: DataFlowGraph,
    allowed: set[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    max_size: int,
    max_visited: int,
) -> tuple[frozenset[int], float, float] | None:
    """Maximum-gain feasible connected subgraph over *allowed* nodes."""
    adj = _undirected_adjacency(dfg, allowed)
    best: tuple[float, float, frozenset[int]] | None = None
    visited = 0

    def evaluate(sub: set[int]) -> None:
        nonlocal best
        if len(sub) < 2:
            return
        if not dfg.is_feasible(sub, max_inputs, max_outputs):
            return
        node_list = sorted(sub)
        preds = {n: [p for p in dfg.preds(n) if p in sub] for n in node_list}
        ops = {n: dfg.op(n) for n in node_list}
        cost = model.subgraph_cost(node_list, preds, ops)
        key = (float(cost.gain), -cost.area, frozenset(sub))
        if cost.gain > 0 and (best is None or key[:2] > (best[0], -best[1])):
            best = (float(cost.gain), cost.area, frozenset(sub))

    def extend(sub: set[int], extension: list[int], root: int) -> bool:
        nonlocal visited
        visited += 1
        if visited > max_visited:
            return False
        evaluate(sub)
        if len(sub) >= max_size:
            return True
        while extension:
            w = extension.pop()
            new_ext = list(extension)
            sub_and_ext = sub | set(extension) | {w}
            for u in adj[w]:
                if u > root and u not in sub_and_ext:
                    new_ext.append(u)
            sub.add(w)
            if not extend(sub, new_ext, root):
                return False
            sub.remove(w)
        return True

    for root in sorted(adj):
        ext = [u for u in adj[root] if u > root]
        if not extend({root}, ext, root):
            break
    if best is None:
        return None
    return best[2], best[0], best[1]


def iterative_selection(
    dfg: DataFlowGraph,
    max_inputs: int = 4,
    max_outputs: int = 2,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    max_iterations: int | None = None,
    time_budget: float | None = None,
    max_size: int = 14,
    max_visited_per_iter: int = 400_000,
) -> list[IsStep]:
    """Run IS on one basic block's DFG.

    Args:
        dfg: the dataflow graph.
        max_inputs / max_outputs: register-port constraints.
        model: hardware cost model.
        max_iterations: stop after this many custom instructions.
        time_budget: wall-clock cutoff in seconds (IS on very large blocks
            may otherwise run for hours, per the thesis).
        max_size: maximum operations per custom instruction.
        max_visited_per_iter: identification search cap per iteration.

    Returns:
        One :class:`IsStep` per committed custom instruction, in commit
        order, with cumulative elapsed timestamps.
    """
    start = time.perf_counter()
    allowed = set(dfg.valid_nodes)
    steps: list[IsStep] = []
    while True:
        if max_iterations is not None and len(steps) >= max_iterations:
            break
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        found = _best_single_cut(
            dfg, allowed, max_inputs, max_outputs, model, max_size,
            max_visited_per_iter,
        )
        if found is None:
            break
        nodes, gain, area = found
        allowed -= nodes
        steps.append(
            IsStep(
                nodes=nodes,
                gain=gain,
                area=area,
                elapsed=time.perf_counter() - start,
            )
        )
    return steps
