"""Array-native MLGP move evaluation (``engine="array"``).

Rides on the bitset fast path (:mod:`repro.mlgp.mlgp_fast`) and batches
the part of its move evaluation that is *not* already incremental: at the
start of every refinement pass, the source-remainder masks of the pass's
candidate moves (``source \\ moving-vertex`` for every boundary vertex at
pass-start state) are scored **in one array pass** over packed uint64
bitset matrices —

* the remainder masks are packed into one ``(B, n_words)`` matrix;
* member pred/anc/desc unions come from one gather +
  ``np.bitwise_or.reduceat`` over the concatenated member rows;
* input-port counts are per-row popcounts, output-port counts one
  per-member external-successor test, convexity one boolean reduction —
  ``(U_anc & U_desc & ~S) == 0`` — over the whole batch.

The verdicts land in the *same* feasibility/I/O memo tables the scalar
``_try_move`` consults, so the refinement loop itself — visit order, RNG
stream, tie-breaks, float arithmetic — is byte-for-byte the fast
engine's and results stay bit-identical to both oracles.

Why only the remainders: a move's *candidate* mask is the disjoint union
of two already-projected masks, so the fast engine scores it with a
memoized O(words) combination (:meth:`_Ctx.feasible_union`) — batching it
would pay a per-int ``pack_masks`` conversion for no asymptotic win.  The
source remainder is the one mask evaluated *from scratch* — an
O(members) Python bit loop in :meth:`_Ctx.comp` — which is exactly the
shape vectorization beats, and it grows with partition size (the big
coarse partitions of the early uncoarsening levels).  Repair sequences
(vertex absorption, inherently sequential) and gain/area ratios (a float
DP whose summation order defines the bit-exact oracle floats, memoized
per mask) stay scalar.

Cost-model subclasses delegate to the fast engine wholesale: a stateful
``subgraph_cost`` override could observe evaluation-order differences if
the prefill warmed cost memos for masks the scalar loop never visits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import npbits
from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import HardwareCostModel
from repro.mlgp.mlgp_fast import _Ctx, _run_bitset_mlgp, run_fast_mlgp

__all__ = ["run_array_mlgp", "ARRAY_MIN_BATCH"]

#: Hybrid dispatch threshold (empirical): a refinement pass with fewer
#: unmemoized source-remainder masks than this skips the batched prefill
#: — the per-call NumPy overhead outweighs the batching win and the
#: scalar ``_Ctx.comp`` path (identical results) is faster.  Tests pin it
#: to 0 to force the array kernel on small workloads.
ARRAY_MIN_BATCH = 16


class _BatchEval:
    """Packed per-node constant matrices + batched feasibility scoring."""

    def __init__(self, ctx: _Ctx) -> None:
        self.ctx = ctx
        n = len(ctx.pred)
        W = npbits.n_words(n)
        self.W = W
        self.PRED = npbits.pack_masks(ctx.pred, W)
        self.SUCC = npbits.pack_masks(ctx.succ, W)
        self.ANC = npbits.pack_masks(ctx.anc, W)
        self.DESC = npbits.pack_masks(ctx.desc, W)
        self.EXT = np.array(ctx.ext_in, dtype=np.int64)
        live_row = npbits.pack_masks([ctx.live_out], W)
        self.live_flag = npbits.unpack_bits(live_row, n)[0].astype(bool)
        self.invalid_row = npbits.pack_masks(
            [ctx.masks.full & ~ctx.valid], W
        )[0]

    def feasibility(
        self, masks: list[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``_Ctx.feasible``/``_Ctx.io`` over non-empty int masks.

        Returns ``(feasible, inputs, outputs)`` arrays; integer-exact, so
        the verdicts equal the scalar memo values bit for bit.
        """
        rows = npbits.pack_masks(masks, self.W)
        counts = npbits.popcount_rows(rows)
        starts = np.concatenate(([0], counts.cumsum()[:-1]))
        members, _ranks = npbits.set_bits_csr(rows)
        owner = np.arange(rows.shape[0], dtype=np.int64).repeat(counts)
        # Garbage bits past ``n`` in ``not_sub`` are cleared by the ANDs
        # below (every constant row is a subset of ``full``).
        not_sub = ~rows
        predu = np.bitwise_or.reduceat(
            self.PRED.take(members, axis=0), starts, axis=0
        )
        ancu = np.bitwise_or.reduceat(
            self.ANC.take(members, axis=0), starts, axis=0
        )
        descu = np.bitwise_or.reduceat(
            self.DESC.take(members, axis=0), starts, axis=0
        )
        inputs = npbits.popcount_rows(predu & not_sub) + np.add.reduceat(
            self.EXT.take(members), starts
        )
        is_out = npbits.nonzero_rows(
            self.SUCC.take(members, axis=0) & not_sub.take(owner, axis=0)
        ) | self.live_flag.take(members)
        outputs = np.add.reduceat(is_out.astype(np.int64), starts)
        convex = ~npbits.nonzero_rows(ancu & descu & not_sub)
        feasible = (
            (inputs <= self.ctx.max_inputs)
            & (outputs <= self.ctx.max_outputs)
            & convex
            & ~npbits.nonzero_rows(rows & self.invalid_row)
        )
        return feasible, inputs, outputs


def _get_batch(ctx: _Ctx) -> _BatchEval:
    b = getattr(ctx, "_array_batch", None)
    if b is None:
        b = _BatchEval(ctx)
        ctx._array_batch = b
    return b


def _prefill(state) -> None:
    """Batch-score the pass's source-remainder masks into the memo tables.

    A boundary vertex ``v``'s repair-free moves all share one remainder
    mask (``source partition \\ v``, independent of the destination), so
    the pass needs at most one from-scratch projection per boundary
    vertex.  Those not already memoized are scored in a single
    :meth:`_BatchEval.feasibility` call; the scalar ``_try_move`` then
    reads the verdicts back as pure memo hits.  No RNG is consumed and
    the tables are keyed by mask, so fill order cannot influence results.
    """
    ctx = state.ctx
    assign = state.assign
    vertices = state.level.vertices
    part_mask = state.part_mask
    feas_memo = ctx._feas_memo
    io_memo = ctx._io_memo

    todo: set[int] = set()
    for v, f in enumerate(state.foreign):
        if f <= 0:
            continue
        rest = part_mask[assign[v]] & ~vertices[v]
        if rest and rest not in feas_memo:
            todo.add(rest)
    if not todo or len(todo) < ARRAY_MIN_BATCH:
        return
    rest_todo = sorted(todo)
    feas_r, in_r, out_r = _get_batch(ctx).feasibility(rest_todo)
    for i, m in enumerate(rest_todo):
        feas_memo[m] = bool(feas_r[i])
        io_memo[m] = (int(in_r[i]), int(out_r[i]))


def run_array_mlgp(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    refine_passes: int,
) -> tuple[
    tuple[tuple[frozenset[int], ...], tuple[float, ...], tuple[float, ...]],
    dict[str, int],
]:
    """Run the array MLGP engine on one region (see module docstring)."""
    if type(model) is not HardwareCostModel:
        return run_fast_mlgp(
            dfg, region, max_inputs, max_outputs, model, seed, refine_passes
        )
    return _run_bitset_mlgp(
        dfg,
        region,
        max_inputs,
        max_outputs,
        model,
        seed,
        refine_passes,
        prefill=_prefill,
    )
