"""Iterative custom-instruction generation via multi-level graph
partitioning (thesis Chapter 5)."""

from repro.mlgp.flow import (
    GeneratedCI,
    IterationRecord,
    IterativeResult,
    ProfileStep,
    iterative_customization,
    mlgp_program_profile,
)
from repro.mlgp.is_baseline import IsStep, iterative_selection
from repro.mlgp.isegen import isegen_selection
from repro.mlgp.mlgp import MlgpResult, mlgp_partition

__all__ = [
    "isegen_selection",
    "GeneratedCI",
    "IterationRecord",
    "IterativeResult",
    "ProfileStep",
    "iterative_customization",
    "mlgp_program_profile",
    "IsStep",
    "iterative_selection",
    "MlgpResult",
    "mlgp_partition",
]
