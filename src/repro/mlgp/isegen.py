"""ISEGEN-style iterative single-cut generation (thesis 2.3.3, [13]).

Like Iterative Selection, ISEGEN commits one custom instruction per
iteration; unlike IS's optimal enumeration it *grows* the cut with
Kernighan-Lin-flavoured moves: starting from a seed node, repeatedly toggle
the boundary node with the best marginal effect on the cut's gain, keeping
the cut feasible, until a pass yields no improvement.  Much cheaper than
enumeration on large blocks, usually close in quality — the classic
quality/runtime midpoint between IS and MLGP.
"""

from __future__ import annotations

import time

from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel
from repro.mlgp.is_baseline import IsStep

__all__ = ["isegen_selection"]


def _cut_gain(
    dfg: DataFlowGraph,
    nodes: set[int],
    model: HardwareCostModel,
) -> tuple[float, float]:
    """(gain, area) of a cut; gain 0 for singletons/empty."""
    if len(nodes) < 2:
        return 0.0, sum(model.area(dfg.op(n)) for n in nodes)
    ordered = sorted(nodes)
    preds = {n: [p for p in dfg.preds(n) if p in nodes] for n in ordered}
    ops = {n: dfg.op(n) for n in ordered}
    cost = model.subgraph_cost(ordered, preds, ops)
    return float(cost.gain), cost.area


def _grow_cut(
    dfg: DataFlowGraph,
    seed: int,
    allowed: set[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    max_passes: int = 6,
) -> tuple[frozenset[int], float, float]:
    """Grow one cut from *seed* with best-move passes."""
    cut: set[int] = {seed}
    gain, area = _cut_gain(dfg, cut, model)
    improved = True
    passes = 0
    while improved and passes < max_passes:
        improved = False
        passes += 1
        # Boundary of the cut within the allowed node set.
        boundary: set[int] = set()
        for n in cut:
            for m in (*dfg.preds(n), *dfg.succs(n)):
                if m in allowed and m not in cut:
                    boundary.add(m)
        best_move: tuple[float, int, bool] | None = None  # (new gain, node, add?)
        for m in sorted(boundary):
            trial = cut | {m}
            if not dfg.is_feasible(trial, max_inputs, max_outputs):
                continue
            g, _a = _cut_gain(dfg, trial, model)
            if g > gain + 1e-9 and (best_move is None or g > best_move[0]):
                best_move = (g, m, True)
        # Also consider dropping a member (KL-style toggle).
        if len(cut) > 1:
            for m in sorted(cut):
                if m == seed:
                    continue
                trial = cut - {m}
                if not dfg.is_feasible(trial, max_inputs, max_outputs):
                    continue
                g, _a = _cut_gain(dfg, trial, model)
                if g > gain + 1e-9 and (best_move is None or g > best_move[0]):
                    best_move = (g, m, False)
        if best_move is not None:
            _g, m, add = best_move
            if add:
                cut.add(m)
            else:
                cut.discard(m)
            gain, area = _cut_gain(dfg, cut, model)
            improved = True
    return frozenset(cut), gain, area


def isegen_selection(
    dfg: DataFlowGraph,
    max_inputs: int = 4,
    max_outputs: int = 2,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    max_iterations: int | None = None,
    time_budget: float | None = None,
) -> list[IsStep]:
    """Run ISEGEN on one basic block's DFG.

    Per iteration: seed at the remaining valid node with the largest
    software latency, grow a cut with KL-style toggles, commit it if its
    gain is positive, and remove its nodes from further consideration.

    Returns:
        One :class:`~repro.mlgp.is_baseline.IsStep` per committed
        instruction (same shape as the IS baseline for easy comparison).
    """
    start = time.perf_counter()
    allowed = set(dfg.valid_nodes)
    steps: list[IsStep] = []
    while allowed:
        if max_iterations is not None and len(steps) >= max_iterations:
            break
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        seed = max(allowed, key=lambda n: (model.sw_cycles(dfg.op(n)), -n))
        cut, gain, area = _grow_cut(
            dfg, seed, allowed, max_inputs, max_outputs, model
        )
        if gain <= 0:
            # Seed can't anchor a profitable cut; retire it and move on.
            allowed.discard(seed)
            continue
        allowed -= cut
        steps.append(
            IsStep(
                nodes=cut,
                gain=gain,
                area=area,
                elapsed=time.perf_counter() - start,
            )
        )
    return steps
