"""Multi-Level Graph Partitioning (MLGP) custom-instruction generation.

Thesis Section 5.2.3.  Given a *region* (a maximal invalid-node-free
subgraph of a basic block's DFG), MLGP partitions it into a small number of
large, legal custom instructions in three phases, following the multilevel
paradigm of Karypis & Kumar [56]:

1. **Coarsening** — repeatedly match adjacent vertices whose merged
   projection onto the original DFG stays feasible (I/O + convexity),
   preferring the match with the highest gain/area ratio.  A coarse vertex
   is therefore always a feasible candidate subgraph.
2. **Initial partitioning** — every vertex of the coarsest graph becomes
   its own partition (candidate custom instruction); the number of
   partitions is *not* fixed a priori (unlike classic k-way partitioning).
3. **Uncoarsening + refinement** — partitions are projected back level by
   level; at each level boundary vertices may move to a neighbouring
   partition when the move improves the summed gain/area ratio
   (Algorithm 5).  When a move violates the input (output) constraint the
   algorithm tries to repair it by pulling predecessor (successor) vertices
   of the moved vertex from the source partition into the destination.

The result is a set of disjoint feasible partitions; those with positive
gain become custom instructions.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro import cache, obs
from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel
from repro.mlgp.mlgp_fast import run_fast_mlgp

__all__ = ["MlgpResult", "mlgp_partition"]


@dataclass(frozen=True)
class MlgpResult:
    """Outcome of MLGP on one region.

    Attributes:
        partitions: disjoint node sets; each is feasible under the
            constraints used for the run.
        gains: per-partition cycle gain (``sw - hw``; 0 if not profitable).
        areas: per-partition hardware area.
    """

    partitions: tuple[frozenset[int], ...]
    gains: tuple[float, ...]
    areas: tuple[float, ...]

    @property
    def total_gain(self) -> float:
        return sum(self.gains)

    @property
    def total_area(self) -> float:
        return sum(a for a, g in zip(self.areas, self.gains) if g > 0)

    def custom_instructions(self) -> list[frozenset[int]]:
        """Partitions worth implementing (positive gain)."""
        return [p for p, g in zip(self.partitions, self.gains) if g > 0]


class _Level:
    """One level of the multilevel hierarchy."""

    def __init__(self, vertices: list[frozenset[int]], adj: list[set[int]]) -> None:
        self.vertices = vertices  # projection of each vertex onto G0 nodes
        self.adj = adj  # coarse undirected adjacency
        self.parent: list[int] = []  # vertex -> vertex index in coarser level


def _project_cost(
    dfg: DataFlowGraph, nodes: frozenset[int], model: HardwareCostModel
) -> tuple[float, float]:
    """(gain, area) of a projected subgraph; gain 0 for singletons."""
    node_list = sorted(nodes)
    preds = {n: [p for p in dfg.preds(n) if p in nodes] for n in node_list}
    ops = {n: dfg.op(n) for n in node_list}
    cost = model.subgraph_cost(node_list, preds, ops)
    gain = float(cost.gain) if len(nodes) > 1 else 0.0
    return gain, cost.area


def _ratio(gain: float, area: float) -> float:
    if area <= 0:
        return 0.0
    return gain / area


def _build_level0(dfg: DataFlowGraph, region: Sequence[int]) -> _Level:
    region_set = set(region)
    index = {n: i for i, n in enumerate(region)}
    vertices = [frozenset([n]) for n in region]
    adj: list[set[int]] = [set() for _ in region]
    for n in region:
        for p in dfg.preds(n):
            if p in region_set:
                adj[index[n]].add(index[p])
                adj[index[p]].add(index[n])
    return _Level(vertices, adj)


def _coarsen(
    dfg: DataFlowGraph,
    level: _Level,
    rng: random.Random,
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
) -> _Level | None:
    """One coarsening pass; None when no pair could be matched."""
    n = len(level.vertices)
    order = list(range(n))
    rng.shuffle(order)
    matched = [False] * n
    groups: list[list[int]] = []
    merged_any = False
    for u in order:
        if matched[u]:
            continue
        best_v = -1
        best_ratio = -1.0
        for v in sorted(level.adj[u]):
            if matched[v] or v == u:
                continue
            merged = level.vertices[u] | level.vertices[v]
            if not dfg.is_feasible(merged, max_inputs, max_outputs):
                continue
            gain, area = _project_cost(dfg, merged, model)
            r = _ratio(gain, area)
            if r > best_ratio:
                best_ratio = r
                best_v = v
        matched[u] = True
        if best_v >= 0:
            matched[best_v] = True
            groups.append([u, best_v])
            merged_any = True
        else:
            groups.append([u])
    if not merged_any:
        return None
    # Build the coarser level.
    coarse_vertices = [
        frozenset().union(*(level.vertices[m] for m in g)) for g in groups
    ]
    coarse_of = [0] * n
    for ci, g in enumerate(groups):
        for m in g:
            coarse_of[m] = ci
    coarse_adj: list[set[int]] = [set() for _ in groups]
    for u in range(n):
        for v in level.adj[u]:
            cu, cv = coarse_of[u], coarse_of[v]
            if cu != cv:
                coarse_adj[cu].add(cv)
                coarse_adj[cv].add(cu)
    level.parent = coarse_of
    return _Level(coarse_vertices, coarse_adj)


class _PartitionState:
    """Mutable partition bookkeeping during refinement at one level."""

    def __init__(
        self,
        dfg: DataFlowGraph,
        level: _Level,
        assign: list[int],
        n_parts: int,
        max_inputs: int,
        max_outputs: int,
        model: HardwareCostModel,
    ) -> None:
        self.dfg = dfg
        self.level = level
        self.assign = assign
        self.max_inputs = max_inputs
        self.max_outputs = max_outputs
        self.model = model
        self.members: list[set[int]] = [set() for _ in range(n_parts)]
        for v, p in enumerate(assign):
            self.members[p].add(v)
        self._cache: dict[int, tuple[float, float, bool]] = {}

    def nodes_of(self, part: int) -> frozenset[int]:
        if not self.members[part]:
            return frozenset()
        return frozenset().union(
            *(self.level.vertices[v] for v in self.members[part])
        )

    def stats(self, part: int) -> tuple[float, float, bool]:
        """(gain, area, feasible) of a partition, cached."""
        if part in self._cache:
            return self._cache[part]
        nodes = self.nodes_of(part)
        if not nodes:
            result = (0.0, 0.0, True)
        else:
            feasible = self.dfg.is_feasible(nodes, self.max_inputs, self.max_outputs)
            gain, area = _project_cost(self.dfg, nodes, self.model)
            result = (gain if feasible else 0.0, area, feasible)
        self._cache[part] = result
        return result

    def ratio(self, part: int) -> float:
        gain, area, _feasible = self.stats(part)
        return _ratio(gain, area)

    def move(self, vertices: list[int], dest: int) -> None:
        for v in vertices:
            src = self.assign[v]
            self.members[src].discard(v)
            self.members[dest].add(v)
            self.assign[v] = dest
            self._cache.pop(src, None)
        self._cache.pop(dest, None)

    def boundary_vertices(self) -> list[int]:
        out = []
        for v, p in enumerate(self.assign):
            if any(self.assign[u] != p for u in self.level.adj[v]):
                out.append(v)
        return out

    def neighbor_parts(self, v: int) -> set[int]:
        return {
            self.assign[u] for u in self.level.adj[v] if self.assign[u] != self.assign[v]
        }


def _try_move(
    state: _PartitionState,
    v: int,
    dest: int,
    rng: random.Random,
    counters: dict[str, int] | None = None,
) -> tuple[float, list[int]] | None:
    """Evaluate moving vertex *v* (plus repair vertices) into *dest*.

    Implements the move of Algorithm 5: when the input (output) constraint
    of the destination breaks, pull predecessor (successor) vertices of *v*
    from the *source* partition along to repair it.  Returns the ratio
    improvement and the vertex list to move, or None if infeasible/worse.
    """
    dfg = state.dfg
    src = state.assign[v]
    src_members = state.members[src]
    dest_nodes = state.nodes_of(dest)
    moving = [v]
    moving_nodes = set(state.level.vertices[v])

    # Source without the moved vertices must stay feasible (or empty).
    def src_ok(moving_set: set[int]) -> bool:
        rest = src_members - moving_set
        if not rest:
            return True
        nodes = frozenset().union(*(state.level.vertices[u] for u in rest))
        return dfg.is_feasible(nodes, state.max_inputs, state.max_outputs)

    def feasible(nodes: frozenset[int]) -> bool:
        return dfg.is_feasible(nodes, state.max_inputs, state.max_outputs)

    candidate = frozenset(dest_nodes | moving_nodes)
    repair_budget = 4
    while not feasible(candidate) and repair_budget > 0:
        io = dfg.io_count(candidate)
        # Pick a repair direction: absorb producers to cut inputs, consumers
        # to cut outputs.
        pool: list[int] = []
        if io.inputs > state.max_inputs:
            for n in candidate:
                for p in dfg.preds(n):
                    if p not in candidate:
                        pool.append(p)
        elif io.outputs > state.max_outputs:
            for n in candidate:
                for s in dfg.succs(n):
                    if s not in candidate:
                        pool.append(s)
        else:
            break  # convexity violation: single-vertex repair will not fix it
        # Only vertices currently in the source partition may be pulled in
        # (keeps the two-partition accounting of Algorithm 5 exact).
        vertex_of: dict[int, int] = {}
        for u in src_members:
            if u in moving:
                continue
            for node in state.level.vertices[u]:
                vertex_of[node] = u
        counts: dict[int, int] = {}
        for node in pool:
            u = vertex_of.get(node)
            if u is not None:
                counts[u] = counts.get(u, 0) + 1
        if not counts:
            return None
        # Absorb the vertex connected by the most edges first.
        u = max(counts, key=lambda k: (counts[k], -k))
        moving.append(u)
        moving_nodes |= state.level.vertices[u]
        candidate = frozenset(dest_nodes | moving_nodes)
        repair_budget -= 1
        if counters is not None:
            counters["repairs"] += 1
    if not feasible(candidate):
        return None
    if not src_ok(set(moving)):
        return None

    # Ratio improvement (Algorithm 5 line 11).
    gain_p, area_p, _ = state.stats(dest)
    gain_pv, area_pv, _ = state.stats(src)
    new_gain_p, new_area_p = _project_cost(dfg, candidate, state.model)
    rest = src_members - set(moving)
    if rest:
        rest_nodes = frozenset().union(*(state.level.vertices[u] for u in rest))
        new_gain_pv, new_area_pv = _project_cost(dfg, rest_nodes, state.model)
    else:
        new_gain_pv, new_area_pv = 0.0, 0.0
    improv = (
        _ratio(new_gain_p, new_area_p)
        - _ratio(gain_p, area_p)
        + _ratio(new_gain_pv, new_area_pv)
        - _ratio(gain_pv, area_pv)
    )
    if improv <= 1e-12:
        return None
    return improv, moving


def _refine(
    state: _PartitionState,
    rng: random.Random,
    max_passes: int = 3,
    counters: dict[str, int] | None = None,
) -> None:
    for _ in range(max_passes):
        improved = False
        boundary = state.boundary_vertices()
        rng.shuffle(boundary)
        for v in boundary:
            best: tuple[float, list[int], int] | None = None
            for dest in sorted(state.neighbor_parts(v)):
                res = _try_move(state, v, dest, rng, counters)
                if res is not None and (best is None or res[0] > best[0]):
                    best = (res[0], res[1], dest)
            if best is not None:
                state.move(best[1], best[2])
                if counters is not None:
                    counters["moves"] += len(best[1])
                improved = True
        if not improved:
            break


def mlgp_partition(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int = 4,
    max_outputs: int = 2,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    refine_passes: int = 3,
    engine: str = "fast",
    use_cache: bool = True,
) -> MlgpResult:
    """Run MLGP on one region of a DFG.

    Args:
        dfg: the basic block's dataflow graph.
        region: node ids of the region to partition (valid nodes only).
        max_inputs / max_outputs: register-port constraints.
        model: hardware cost model.
        seed: RNG seed for matching/refinement visit order.
        refine_passes: refinement passes per uncoarsening level.
        engine: ``"fast"`` (bitset node sets, memoized projection tables,
            incremental bookkeeping; see :mod:`repro.mlgp.mlgp_fast`),
            ``"array"`` (the fast engine with each refinement pass's move
            evaluations batched into one NumPy pass; see
            :mod:`repro.mlgp.mlgp_array`), ``"compiled"`` (that batch
            scoring as a JIT-compiled kernel when a toolchain is up,
            degrading to the array engine otherwise; see
            :mod:`repro.mlgp.mlgp_compiled`), ``"auto"`` (compiled under
            a numba toolchain, array otherwise) or ``"reference"`` (the
            original frozenset implementation).  All engines produce
            bit-identical results — the batch verdicts land in the same
            mask-keyed memo tables — asserted by the differential tests,
            so the cache key is engine-independent.
        use_cache: memoize the result behind a content key (DFG digest +
            region + parameters) in :mod:`repro.cache`.  Only plain
            :class:`HardwareCostModel` instances are content-addressable;
            a model subclass bypasses the cache.

    Returns:
        An :class:`MlgpResult` with disjoint feasible partitions.
    """
    if engine not in ("fast", "array", "compiled", "auto", "reference"):
        raise ValueError(f"unknown MLGP engine {engine!r}")
    if engine == "auto":
        from repro import jit

        engine = "compiled" if jit.toolchain() == "numba" else "array"
    key = None
    if use_cache and type(model) is HardwareCostModel:
        key = cache.artifact_key(
            cache.dfg_digest(dfg),
            kind="mlgp",
            region=tuple(region),
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            cycle_delay=model.cycle_delay,
            seed=seed,
            refine_passes=refine_passes,
        )
        cached = cache.fetch_mlgp(key)
        if cached is not None:
            return MlgpResult(
                partitions=tuple(frozenset(p) for p in cached["partitions"]),
                gains=tuple(cached["gains"]),
                areas=tuple(cached["areas"]),
            )
    with obs.span("mlgp.partition", nodes=len(region), engine=engine):
        if engine in ("fast", "array", "compiled"):
            if engine == "array":
                from repro.mlgp.mlgp_array import run_array_mlgp

                runner = run_array_mlgp
            elif engine == "compiled":
                from repro.mlgp.mlgp_compiled import run_compiled_mlgp

                runner = run_compiled_mlgp
            else:
                runner = run_fast_mlgp
            (partitions, gains, areas), counters = runner(
                dfg, region, max_inputs, max_outputs, model, seed, refine_passes
            )
            result = MlgpResult(
                partitions=partitions, gains=gains, areas=areas
            )
        else:
            counters = {"moves": 0, "repairs": 0}
            result = _reference_mlgp(
                dfg,
                region,
                max_inputs,
                max_outputs,
                model,
                seed,
                refine_passes,
                counters,
            )
    # Hot-loop counters are accumulated locally and flushed once per run.
    obs.inc("mlgp.moves", counters["moves"])
    obs.inc("mlgp.repairs", counters["repairs"])
    if key is not None:
        cache.store_mlgp(
            key,
            {
                "partitions": [sorted(p) for p in result.partitions],
                "gains": list(result.gains),
                "areas": list(result.areas),
            },
        )
    return result


def _reference_mlgp(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    refine_passes: int,
    counters: dict[str, int],
) -> MlgpResult:
    """The original frozenset MLGP implementation (differential oracle)."""
    rng = random.Random(seed)
    level0 = _build_level0(dfg, region)
    levels: list[_Level] = [level0]
    # Coarsening phase.
    while True:
        coarser = _coarsen(
            dfg, levels[-1], rng, max_inputs, max_outputs, model
        )
        if coarser is None:
            break
        levels.append(coarser)

    # Initial partitioning: each coarsest vertex is its own partition.
    coarsest = levels[-1]
    n_parts = len(coarsest.vertices)
    assign = list(range(n_parts))

    # Uncoarsening with refinement.
    for li in range(len(levels) - 1, -1, -1):
        level = levels[li]
        if li < len(levels) - 1:
            finer_assign = [assign[level.parent[v]] for v in range(len(level.vertices))]
            assign = finer_assign
        state = _PartitionState(
            dfg, level, assign, n_parts, max_inputs, max_outputs, model
        )
        _refine(state, rng, max_passes=refine_passes, counters=counters)
        assign = state.assign

    # Collect final partitions from level 0.
    final = _PartitionState(
        dfg, levels[0], assign, n_parts, max_inputs, max_outputs, model
    )
    partitions: list[frozenset[int]] = []
    gains: list[float] = []
    areas: list[float] = []
    for p in range(n_parts):
        nodes = final.nodes_of(p)
        if not nodes:
            continue
        gain, area, feasible = final.stats(p)
        if not feasible:
            # Infeasible leftovers stay in software: drop them.
            continue
        partitions.append(nodes)
        gains.append(gain)
        areas.append(area)
    return MlgpResult(
        partitions=tuple(partitions), gains=tuple(gains), areas=tuple(areas)
    )
