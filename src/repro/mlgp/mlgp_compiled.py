"""Compiled MLGP move evaluation (``engine="compiled"``).

Rides on the bitset fast path exactly like :mod:`repro.mlgp.mlgp_array`
— same refinement loop, RNG stream, tie-breaks and float arithmetic —
but the pass-start batch scoring of source-remainder masks runs as a
**nopython-style kernel** (:mod:`repro.jit`): one scalar word loop per
mask instead of the array engine's gather/reduceat cascade.  The
verdicts land in the same feasibility/I/O memo tables, are
integer-exact, and are keyed by mask, so results stay bit-identical to
the fast/array/reference engines (the partitioning differential suite
asserts it).

Fallback ladder: no toolchain → the array prefill (bit-identical);
non-default cost models delegate to the fast engine wholesale for the
same evaluation-order reason documented in ``mlgp_array``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import jit, npbits
from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import HardwareCostModel
from repro.mlgp.mlgp_array import _BatchEval, _get_batch
from repro.mlgp.mlgp_fast import _run_bitset_mlgp, run_fast_mlgp

__all__ = ["run_compiled_mlgp", "COMPILED_MIN_BATCH"]

#: Batch-size threshold for the compiled prefill.  Lower than the array
#: engine's :data:`ARRAY_MIN_BATCH`: the kernel has no NumPy dispatch
#: overhead to amortize, only the pack/unpack of the mask batch.  Tests
#: pin it to 0 to force the kernel on small workloads.
COMPILED_MIN_BATCH = 8


@jit.register_kernel("mlgp_feasibility")
def _feasibility_kernel(
    ROWS,  # (B, W) uint64: the masks to score
    PRED,  # (n, W) uint64 per-node constant rows
    SUCC,  # (n, W)
    ANC,  # (n, W)
    DESC,  # (n, W)
    EXT,  # (n,) int64: external (live-in) operand counts
    LIVE,  # (n,) uint8: live-out flags
    INVALID,  # (W,) uint64: invalid-node row
    max_inputs,
    max_outputs,
):
    """Batched ``_Ctx.feasible``/``_Ctx.io``: (feasible, inputs, outputs)."""
    B = ROWS.shape[0]
    W = ROWS.shape[1]

    def popcnt(x):
        x = x - ((x >> 1) & 0x5555555555555555)
        x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
        x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F
        x = x + (x >> 8)
        x = x + (x >> 16)
        x = x + (x >> 32)
        return np.int64(x & 0x7F)

    feas = np.zeros(B, dtype=np.uint8)
    ins = np.zeros(B, dtype=np.int64)
    outs = np.zeros(B, dtype=np.int64)
    predu = np.zeros(W, dtype=np.uint64)
    ancu = np.zeros(W, dtype=np.uint64)
    descu = np.zeros(W, dtype=np.uint64)
    for i in range(B):
        for t in range(W):
            predu[t] = 0
            ancu[t] = 0
            descu[t] = 0
        ext_sum = 0
        n_out = 0
        overlap_invalid = False
        for t in range(W):
            if (ROWS[i, t] & INVALID[t]) != 0:
                overlap_invalid = True
            word = ROWS[i, t]
            while word != 0:
                low = word & (~word + 1)
                word = word ^ low
                b = popcnt(low - 1) + (t << 6)
                for q in range(W):
                    predu[q] |= PRED[b, q]
                    ancu[q] |= ANC[b, q]
                    descu[q] |= DESC[b, q]
                ext_sum += EXT[b]
                if LIVE[b] != 0:
                    n_out += 1
                else:
                    for q in range(W):
                        if (SUCC[b, q] & ~ROWS[i, q]) != 0:
                            n_out += 1
                            break
        n_in = ext_sum
        convex = True
        for t in range(W):
            n_in += popcnt(predu[t] & ~ROWS[i, t])
            if (ancu[t] & descu[t] & ~ROWS[i, t]) != 0:
                convex = False
        ins[i] = n_in
        outs[i] = n_out
        if (
            n_in <= max_inputs
            and n_out <= max_outputs
            and convex
            and not overlap_invalid
        ):
            feas[i] = 1
    return feas, ins, outs


def _batch_live8(batch: _BatchEval) -> np.ndarray:
    flags = getattr(batch, "_live8", None)
    if flags is None:
        flags = batch.live_flag.astype(np.uint8)
        batch._live8 = flags
    return flags


def _prefill(state) -> None:
    """Kernel-backed variant of :func:`repro.mlgp.mlgp_array._prefill`.

    Same memo-table contract: one from-scratch source-remainder mask per
    boundary vertex, scored in a single kernel call; no RNG is consumed
    and the tables are keyed by mask, so fill order cannot influence
    results.
    """
    ctx = state.ctx
    assign = state.assign
    vertices = state.level.vertices
    part_mask = state.part_mask
    feas_memo = ctx._feas_memo
    io_memo = ctx._io_memo

    todo: set[int] = set()
    for v, f in enumerate(state.foreign):
        if f <= 0:
            continue
        rest = part_mask[assign[v]] & ~vertices[v]
        if rest and rest not in feas_memo:
            todo.add(rest)
    if not todo or len(todo) < COMPILED_MIN_BATCH:
        return
    kern = jit.get_kernel("mlgp_feasibility")
    rest_todo = sorted(todo)
    batch = _get_batch(ctx)
    rows = npbits.pack_masks(rest_todo, batch.W)
    feas_r, in_r, out_r = kern(
        rows,
        batch.PRED,
        batch.SUCC,
        batch.ANC,
        batch.DESC,
        batch.EXT,
        _batch_live8(batch),
        batch.invalid_row,
        ctx.max_inputs,
        ctx.max_outputs,
    )
    for i, m in enumerate(rest_todo):
        feas_memo[m] = bool(feas_r[i])
        io_memo[m] = (int(in_r[i]), int(out_r[i]))


def run_compiled_mlgp(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    refine_passes: int,
) -> tuple[
    tuple[tuple[frozenset[int], ...], tuple[float, ...], tuple[float, ...]],
    dict[str, int],
]:
    """Run the compiled MLGP engine on one region (see module docstring)."""
    if not jit.available():
        jit.note_fallback("mlgp")
        from repro.mlgp.mlgp_array import run_array_mlgp

        return run_array_mlgp(
            dfg, region, max_inputs, max_outputs, model, seed, refine_passes
        )
    if type(model) is not HardwareCostModel:
        return run_fast_mlgp(
            dfg, region, max_inputs, max_outputs, model, seed, refine_passes
        )
    return _run_bitset_mlgp(
        dfg,
        region,
        max_inputs,
        max_outputs,
        model,
        seed,
        refine_passes,
        prefill=_prefill,
    )
