"""Bitset fast path for MLGP partitioning (``engine="fast"``).

Mirrors the reference algorithm in :mod:`repro.mlgp.mlgp` step for step —
same RNG stream, same visit orders, same float arithmetic — so the
produced partitions are *bit-identical* to the reference oracle under any
seed (asserted by ``tests/test_partitioning_differential.py``).  What
changes is the data representation and the bookkeeping cost:

* **node sets are int bitsets** — a coarse vertex's projection onto the
  original DFG is one Python int (bit ``n`` = node ``n``), so set algebra
  (union, difference, membership) is single word-vector operations
  instead of ``frozenset`` traffic;
* **memoized projection tables** — feasibility, I/O counts and
  (gain, area) cost projections are cached per bitset for the whole run,
  so the refinement loop's repeated re-evaluation of the same candidate
  subgraphs (across passes *and* uncoarsening levels) collapses to dict
  lookups;
* **incremental partition bookkeeping** — each partition's projected node
  bitset and each vertex's foreign-neighbour count are maintained under
  :meth:`_FastPartition.move` in O(moved vertices · degree), so
  ``boundary_vertices``/``stats`` no longer rescan the whole level.

Feasibility itself is evaluated in O(|S|) word operations from the
precomputed :class:`~repro.graphs.dfg.DFGMasks`:

* inputs  = ``popcount(union of member preds & ~S)`` + live-in operands;
* outputs = members with a live-out value or a successor outside ``S``;
* convexity — ``S`` is convex iff no node outside ``S`` is both a
  descendant of a member and an ancestor of a member:
  ``(U_desc & U_anc) & ~S == 0``.
"""

from __future__ import annotations

import random
import weakref
from collections.abc import Sequence

from repro.graphs.dfg import DataFlowGraph
from repro.isa.costmodel import HardwareCostModel
from repro.isa.opcodes import op_info

__all__ = ["run_fast_mlgp"]


def _bits(mask: int) -> list[int]:
    """Set bit positions of *mask*, ascending (= topological node order)."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class _Ctx:
    """Per-run projection tables shared across levels and passes."""

    def __init__(
        self,
        dfg: DataFlowGraph,
        max_inputs: int,
        max_outputs: int,
        model: HardwareCostModel,
    ) -> None:
        masks = dfg.bitset_masks()
        self.masks = masks
        self.pred = masks.pred
        self.succ = masks.succ
        self.anc = masks.anc
        self.desc = masks.desc
        self.valid = masks.valid
        self.live_out = masks.live_out
        self.ext_in = masks.external_inputs
        self.max_inputs = max_inputs
        self.max_outputs = max_outputs
        self.model = model
        # Original predecessor lists (insertion order), so the cost model
        # sees exactly the same structures as the reference engine.
        self.preds_list = [dfg.preds(n) for n in dfg.nodes]
        self.ops = [dfg.op(n) for n in dfg.nodes]
        # Per-node cost primitives for the inlined evaluation.  A model
        # subclass may override subgraph_cost, so only a plain
        # HardwareCostModel is evaluated inline.
        self.plain_model = type(model) is HardwareCostModel
        self.sw_cycles = [op_info(op).sw_cycles for op in self.ops]
        self.hw_delay = [op_info(op).hw_delay for op in self.ops]
        self.hw_area = [op_info(op).hw_area for op in self.ops]
        self._io_memo: dict[int, tuple[int, int]] = {}
        # comp[m] = (ext-input sum, pred union, succ union, anc union,
        # desc union, output-node mask).  The components of a union of two
        # cached masks combine in O(words) — only the output-node mask
        # needs a recheck, and only over the parts' non-live-out outputs
        # (outputs can only *leave* a growing set, never appear).
        self._comp_memo: dict[int, tuple[int, int, int, int, int, int]] = {}
        self._feas_memo: dict[int, bool] = {}
        self._cost_memo: dict[int, tuple[float, float]] = {}
        self._stats_memo: dict[int, tuple[float, float, bool]] = {}
        # Repair-free move evaluations are pure in the three projected
        # masks (moving vertex, destination, source) — whether a repair is
        # needed at all is decided by candidate feasibility, itself
        # mask-only — so their outcomes transfer across levels and runs.
        # Value: ratio improvement, or None for a rejected move.
        self.eval_memo: dict[tuple[int, int, int], float | None] = {}
        # Local counters, flushed once per run by the caller.
        self.moves = 0
        self.repairs = 0

    def comp(self, m: int) -> tuple[int, int, int, int, int, int]:
        """Projection components of *m* (single-pass bit loop), memoized."""
        c = self._comp_memo.get(m)
        if c is not None:
            return c
        ext = 0
        predu = 0
        succu = 0
        ancu = 0
        descu = 0
        outset = 0
        live = self.live_out
        rest = m
        while rest:
            low = rest & -rest
            n = low.bit_length() - 1
            rest ^= low
            ext += self.ext_in[n]
            predu |= self.pred[n]
            sn = self.succ[n]
            succu |= sn
            ancu |= self.anc[n]
            descu |= self.desc[n]
            if (live >> n) & 1 or sn & ~m:
                outset |= low
        c = (ext, predu, succu, ancu, descu, outset)
        self._comp_memo[m] = c
        return c

    def comp_union(self, a: int, b: int, m: int) -> tuple[int, int, int, int, int, int]:
        """Components of the disjoint union ``m = a | b`` in O(changed).

        Unions/sums combine directly; only the output-node mask must be
        rechecked, and only over the parts' non-live-out output nodes
        whose external successors may now all lie inside *m*.
        """
        c = self._comp_memo.get(m)
        if c is not None:
            return c
        ca = self._comp_memo.get(a)
        if ca is None:
            ca = self.comp(a)
        cb = self._comp_memo.get(b)
        if cb is None:
            cb = self.comp(b)
        outset = ca[5] | cb[5]
        check = outset & ~self.live_out
        while check:
            low = check & -check
            n = low.bit_length() - 1
            check ^= low
            if not self.succ[n] & ~m:
                outset ^= low
        c = (
            ca[0] + cb[0],
            ca[1] | cb[1],
            ca[2] | cb[2],
            ca[3] | cb[3],
            ca[4] | cb[4],
            outset,
        )
        self._comp_memo[m] = c
        return c

    def io(self, m: int) -> tuple[int, int]:
        """(inputs, outputs) of the projected subgraph *m*, memoized."""
        r = self._io_memo.get(m)
        if r is not None:
            return r
        c = self.comp(m)
        r = ((c[1] & ~m).bit_count() + c[0], c[5].bit_count())
        self._io_memo[m] = r
        return r

    def feasible(self, m: int) -> bool:
        """Legality of *m* as a custom instruction, memoized."""
        r = self._feas_memo.get(m)
        if r is not None:
            return r
        if m == 0 or m & ~self.valid:
            r = False
        else:
            c = self.comp(m)
            r = (
                (c[1] & ~m).bit_count() + c[0] <= self.max_inputs
                and c[5].bit_count() <= self.max_outputs
                and (c[3] & c[4] & ~m) == 0
            )
        self._feas_memo[m] = r
        return r

    def feasible_union(self, a: int, b: int, m: int) -> bool:
        """``feasible(a | b)`` computed incrementally from cached parts.

        Callers are expected to have missed ``_feas_memo[m]`` already (no
        recheck here).  The I/O counts fall out of the combination, so
        they are stored as a side effect — the repair loop reads them
        back as a pure memo hit.
        """
        if m & ~self.valid:
            r = False
        else:
            comp_memo = self._comp_memo
            c = comp_memo.get(m)
            if c is None:
                ca = comp_memo.get(a)
                if ca is None:
                    ca = self.comp(a)
                cb = comp_memo.get(b)
                if cb is None:
                    cb = self.comp(b)
                outset = ca[5] | cb[5]
                check = outset & ~self.live_out
                while check:
                    low = check & -check
                    n = low.bit_length() - 1
                    check ^= low
                    if not self.succ[n] & ~m:
                        outset ^= low
                c = (
                    ca[0] + cb[0],
                    ca[1] | cb[1],
                    ca[2] | cb[2],
                    ca[3] | cb[3],
                    ca[4] | cb[4],
                    outset,
                )
                comp_memo[m] = c
            inputs = (c[1] & ~m).bit_count() + c[0]
            outputs = c[5].bit_count()
            self._io_memo[m] = (inputs, outputs)
            r = (
                inputs <= self.max_inputs
                and outputs <= self.max_outputs
                and (c[3] & c[4] & ~m) == 0
            )
        self._feas_memo[m] = r
        return r

    def cost(self, m: int) -> tuple[float, float]:
        """(gain, area) of the projected subgraph, memoized.

        Delegates to ``model.subgraph_cost`` on the same (sorted) node
        list / predecessor lists the reference engine builds, so the
        floats are identical bit for bit.
        """
        r = self._cost_memo.get(m)
        if r is not None:
            return r
        if self.plain_model:
            # Inlined subgraph_cost: identical summation/DP order (node
            # ids ascending, the reference's sorted order), so the floats
            # match the reference engine bit for bit.
            sw = 0
            area = 0.0
            longest = 0.0
            finish: dict[int, float] = {}
            count = 0
            rest = m
            while rest:
                low = rest & -rest
                n = low.bit_length() - 1
                rest ^= low
                start = 0.0
                pm = self.pred[n] & m
                while pm:
                    plow = pm & -pm
                    t = finish[plow.bit_length() - 1]
                    pm ^= plow
                    if t > start:
                        start = t
                end = start + self.hw_delay[n]
                finish[n] = end
                if end > longest:
                    longest = end
                sw += self.sw_cycles[n]
                area += self.hw_area[n]
                count += 1
            gain = float(sw - self.model.hw_cycles(longest)) if count > 1 else 0.0
            r = (gain, area)
        else:
            nodes = _bits(m)
            preds = {
                n: [p for p in self.preds_list[n] if (m >> p) & 1]
                for n in nodes
            }
            ops = {n: self.ops[n] for n in nodes}
            cost = self.model.subgraph_cost(nodes, preds, ops)
            gain = float(cost.gain) if len(nodes) > 1 else 0.0
            r = (gain, cost.area)
        self._cost_memo[m] = r
        return r

    def stats(self, m: int) -> tuple[float, float, bool]:
        """(gain, area, feasible) with the reference's zero-gain rule."""
        if m == 0:
            return (0.0, 0.0, True)
        r = self._stats_memo.get(m)
        if r is not None:
            return r
        feasible = self.feasible(m)
        gain, area = self.cost(m)
        r = (gain if feasible else 0.0, area, feasible)
        self._stats_memo[m] = r
        return r


# Contexts (per-node tables + projection memos) are pure functions of the
# DFG structure and the (constraints, model) pair, so they are shared
# across calls: the flow re-partitions the same DFG's regions many times
# (different seeds, different iterations) and every run then reuses the
# accumulated feasibility/cost tables.  A masks-identity check guards
# against DFG mutation (mutators drop the cached DFGMasks object).
_CTX_CACHE: "weakref.WeakKeyDictionary[DataFlowGraph, dict]" = (
    weakref.WeakKeyDictionary()
)


def _get_ctx(
    dfg: DataFlowGraph,
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
) -> _Ctx:
    if type(model) is not HardwareCostModel:
        # Subclasses may close over arbitrary state; memos keyed on the
        # object would go stale silently, so build a fresh context.
        return _Ctx(dfg, max_inputs, max_outputs, model)
    per = _CTX_CACHE.get(dfg)
    if per is None:
        per = {}
        _CTX_CACHE[dfg] = per
    key = (max_inputs, max_outputs, model.cycle_delay)
    ctx = per.get(key)
    if ctx is None or ctx.masks is not dfg.bitset_masks():
        ctx = _Ctx(dfg, max_inputs, max_outputs, model)
        per[key] = ctx
    return ctx


def _ratio(gain: float, area: float) -> float:
    if area <= 0:
        return 0.0
    return gain / area


class _Level:
    """One level of the multilevel hierarchy (bitset vertices).

    Adjacency is stored as sorted tuples — the reference visits
    neighbours in ``sorted(set)`` order, so presorting once at level
    construction removes every per-visit sort.
    """

    def __init__(
        self, vertices: list[int], adj: list[tuple[int, ...]]
    ) -> None:
        self.vertices = vertices  # projection bitset per coarse vertex
        self.adj = adj
        self.parent: list[int] = []


def _build_level0(region: Sequence[int], ctx: _Ctx) -> _Level:
    region_mask = 0
    for n in region:
        region_mask |= 1 << n
    index = {n: i for i, n in enumerate(region)}
    vertices = [1 << n for n in region]
    adj: list[set[int]] = [set() for _ in region]
    for n in region:
        for p in ctx.preds_list[n]:
            if (region_mask >> p) & 1:
                adj[index[n]].add(index[p])
                adj[index[p]].add(index[n])
    return _Level(vertices, [tuple(sorted(s)) for s in adj])


def _coarsen(level: _Level, rng: random.Random, ctx: _Ctx) -> _Level | None:
    """One coarsening pass; mirrors the reference matching order exactly."""
    n = len(level.vertices)
    order = list(range(n))
    rng.shuffle(order)
    matched = [False] * n
    groups: list[list[int]] = []
    merged_any = False
    feas_memo = ctx._feas_memo
    vertices = level.vertices
    for u in order:
        if matched[u]:
            continue
        best_v = -1
        best_ratio = -1.0
        umask = vertices[u]
        for v in level.adj[u]:  # presorted
            if matched[v] or v == u:
                continue
            merged = umask | vertices[v]
            feas = feas_memo.get(merged)
            if feas is None:
                feas = ctx.feasible_union(umask, vertices[v], merged)
            if not feas:
                continue
            gain, area = ctx.cost(merged)
            r = _ratio(gain, area)
            if r > best_ratio:
                best_ratio = r
                best_v = v
        matched[u] = True
        if best_v >= 0:
            matched[best_v] = True
            groups.append([u, best_v])
            merged_any = True
        else:
            groups.append([u])
    if not merged_any:
        return None
    coarse_vertices = []
    for g in groups:
        m = 0
        for member in g:
            m |= level.vertices[member]
        coarse_vertices.append(m)
    coarse_of = [0] * n
    for ci, g in enumerate(groups):
        for member in g:
            coarse_of[member] = ci
    coarse_adj: list[set[int]] = [set() for _ in groups]
    for u in range(n):
        for v in level.adj[u]:
            cu, cv = coarse_of[u], coarse_of[v]
            if cu != cv:
                coarse_adj[cu].add(cv)
                coarse_adj[cv].add(cu)
    level.parent = coarse_of
    return _Level(coarse_vertices, [tuple(sorted(s)) for s in coarse_adj])


class _FastPartition:
    """Incremental partition bookkeeping (bitset counterpart of
    ``_PartitionState``): per-partition projected bitsets and per-vertex
    foreign-neighbour counts are updated in O(changed) on every move."""

    def __init__(
        self, ctx: _Ctx, level: _Level, assign: list[int], n_parts: int
    ) -> None:
        self.ctx = ctx
        self.level = level
        self.assign = assign
        self.part_mask: list[int] = [0] * n_parts
        for v, p in enumerate(assign):
            self.part_mask[p] |= level.vertices[v]
        # node -> vertex index at this level (repair lookups); built
        # lazily — most levels never trigger a repair.
        self._vertex_of_node: dict[int, int] | None = None
        # foreign[v] = number of neighbours in a different partition.
        adj = level.adj
        self.foreign = [
            sum(1 for u in adj[v] if assign[u] != p)
            for v, p in enumerate(assign)
        ]
        # Move evaluations are pure in (v, dest nodes, src nodes) at a
        # fixed level, so results are reusable across refinement passes.
        # Keyed by (v, dest, dest version, src, src version) — partition
        # versions bump on every move, so version equality implies mask
        # equality without hashing the (wide) masks themselves.
        # Value: (improvement or None, vertices to move, repair count).
        self.version = [0] * n_parts
        self.try_memo: dict[
            tuple[int, int, int, int, int],
            tuple[float | None, tuple[int, ...] | None, int],
        ] = {}

    @property
    def vertex_of_node(self) -> dict[int, int]:
        table = self._vertex_of_node
        if table is None:
            table = {}
            for v, mask in enumerate(self.level.vertices):
                for node in _bits(mask):
                    table[node] = v
            self._vertex_of_node = table
        return table

    def boundary_vertices(self) -> list[int]:
        """Same contents and order as the reference's O(V·deg) scan."""
        return [v for v, f in enumerate(self.foreign) if f > 0]

    def neighbor_parts(self, v: int) -> set[int]:
        assign = self.assign
        return {assign[u] for u in self.level.adj[v] if assign[u] != assign[v]}

    def move(self, vertices: list[int], dest: int) -> None:
        level = self.level
        assign = self.assign
        touched: set[int] = set()
        for v in vertices:
            src = assign[v]
            self.part_mask[src] &= ~level.vertices[v]
            self.part_mask[dest] |= level.vertices[v]
            self.version[src] += 1
            assign[v] = dest
            touched.add(v)
            touched.update(level.adj[v])
        self.version[dest] += 1
        for v in touched:
            p = assign[v]
            self.foreign[v] = sum(
                1 for u in level.adj[v] if assign[u] != p
            )
        self.ctx.moves += len(vertices)


_MISS = object()


def _try_move(
    state: _FastPartition,
    v: int,
    dest_mask: int,
    src_mask: int,
    vmask: int,
    memo_key: tuple[int, int, int, int, int],
    ekey: tuple[int, int, int],
) -> tuple[float, list[int]] | None:
    """Bitset mirror of the reference move evaluation (Algorithm 5).

    Callers (``_refine``) have already consulted both memo layers, so
    this always evaluates; it stores the outcome under *memo_key*
    (per-level memo) and, when repair-free, under *ekey* (ctx memo).
    """
    ctx = state.ctx
    moving = [v]
    moving_mask = vmask
    repairs = 0
    feas_memo = ctx._feas_memo

    candidate = dest_mask | moving_mask
    repair_budget = 4
    while True:
        feas = feas_memo.get(candidate)
        if feas is None:
            feas = ctx.feasible_union(dest_mask, moving_mask, candidate)
        if feas or repair_budget <= 0:
            break
        r = ctx._io_memo.get(candidate)
        inputs, outputs = r if r is not None else ctx.io(candidate)
        # Pool of repair nodes, weighted by connecting-edge count so the
        # most-connected vertex is absorbed first (as in the reference,
        # which appends one pool entry per edge).  Rather than walking
        # every member's adjacency, scan only the external boundary
        # *restricted to the source partition* — only vertices still in
        # the source may be pulled in, already-moving vertices lie inside
        # the candidate, and any other producer/consumer is filtered by
        # the mask intersection before a single dict lookup happens.  An
        # outside producer p contributes popcount(succ[p] & candidate)
        # edges, an outside consumer s popcount(pred[s] & candidate).
        counts: dict[int, int] = {}
        table = state._vertex_of_node
        if table is None:
            table = state.vertex_of_node
        if inputs > ctx.max_inputs:
            ext = ctx.comp(candidate)[1] & ~candidate & src_mask
            while ext:
                low = ext & -ext
                p = low.bit_length() - 1
                ext ^= low
                u = table[p]
                edges = (ctx.succ[p] & candidate).bit_count()
                counts[u] = counts.get(u, 0) + edges
        elif outputs > ctx.max_outputs:
            ext = ctx.comp(candidate)[2] & ~candidate & src_mask
            while ext:
                low = ext & -ext
                s = low.bit_length() - 1
                ext ^= low
                u = table[s]
                edges = (ctx.pred[s] & candidate).bit_count()
                counts[u] = counts.get(u, 0) + edges
        else:
            break  # convexity violation: single-vertex repair will not fix it
        if not counts:
            ctx.repairs += repairs
            state.try_memo[memo_key] = (None, None, repairs)
            return None
        u = max(counts, key=lambda k: (counts[k], -k))
        moving.append(u)
        umask = state.level.vertices[u]
        ctx.comp_union(moving_mask, umask, moving_mask | umask)
        moving_mask |= umask
        candidate = dest_mask | moving_mask
        repair_budget -= 1
        repairs += 1
    ctx.repairs += repairs
    if not feas:
        state.try_memo[memo_key] = (None, None, repairs)
        if repairs == 0:
            ctx.eval_memo[ekey] = None
        return None
    rest_mask = src_mask & ~moving_mask
    if rest_mask:
        rest_feas = feas_memo.get(rest_mask)
        if rest_feas is None:
            rest_feas = ctx.feasible(rest_mask)
        if not rest_feas:
            state.try_memo[memo_key] = (None, None, repairs)
            if repairs == 0:
                ctx.eval_memo[ekey] = None
            return None

    cost_memo = ctx._cost_memo
    stats_memo = ctx._stats_memo
    s = stats_memo.get(dest_mask)
    gain_p, area_p, _ = s if s is not None else ctx.stats(dest_mask)
    s = stats_memo.get(src_mask)
    gain_pv, area_pv, _ = s if s is not None else ctx.stats(src_mask)
    r = cost_memo.get(candidate)
    new_gain_p, new_area_p = r if r is not None else ctx.cost(candidate)
    if rest_mask:
        r = cost_memo.get(rest_mask)
        new_gain_pv, new_area_pv = r if r is not None else ctx.cost(rest_mask)
    else:
        new_gain_pv, new_area_pv = 0.0, 0.0
    improv = (
        _ratio(new_gain_p, new_area_p)
        - _ratio(gain_p, area_p)
        + _ratio(new_gain_pv, new_area_pv)
        - _ratio(gain_pv, area_pv)
    )
    if improv <= 1e-12:
        state.try_memo[memo_key] = (None, None, repairs)
        if repairs == 0:
            ctx.eval_memo[ekey] = None
        return None
    state.try_memo[memo_key] = (improv, tuple(moving), repairs)
    if repairs == 0:
        ctx.eval_memo[ekey] = improv
    return improv, moving


def _refine(
    state: _FastPartition,
    rng: random.Random,
    max_passes: int = 3,
    prefill=None,
) -> None:
    ctx = state.ctx
    try_memo = state.try_memo
    eval_memo = ctx.eval_memo
    part_mask = state.part_mask
    version = state.version
    assign = state.assign
    adj = state.level.adj
    vertices = state.level.vertices
    for _ in range(max_passes):
        improved = False
        boundary = state.boundary_vertices()
        rng.shuffle(boundary)
        if prefill is not None:
            # Array engine hook: batch-evaluate the pass's repair-free
            # moves into the memo tables (no RNG use, so the stream and
            # the visit order below are untouched).
            prefill(state)
        for v in boundary:
            p = assign[v]
            neighbor_parts = {assign[u] for u in adj[v] if assign[u] != p}
            best: tuple[float, list[int], int] | None = None
            src_mask = part_mask[p]
            pver = version[p]
            vmask = vertices[v]
            for dest in sorted(neighbor_parts):
                # Inlined memo-hit paths: per-level memo first (knows
                # repaired moves), then the ctx-wide repair-free memo, so
                # repeat visits across passes/levels skip _try_move.
                memo_key = (v, dest, version[dest], p, pver)
                hit = try_memo.get(memo_key)
                if hit is not None:
                    improv, moving_t, repairs = hit
                    ctx.repairs += repairs
                    if improv is None:
                        continue
                    res: tuple[float, list[int]] | None = (
                        improv,
                        list(moving_t),
                    )
                else:
                    dmask = part_mask[dest]
                    ekey = (vmask, dmask, src_mask)
                    ehit = eval_memo.get(ekey, _MISS)
                    if ehit is not _MISS:
                        if ehit is None:
                            continue
                        res = (ehit, [v])
                    else:
                        res = _try_move(
                            state, v, dmask, src_mask, vmask, memo_key, ekey
                        )
                if res is not None and (best is None or res[0] > best[0]):
                    best = (res[0], res[1], dest)
            if best is not None:
                state.move(best[1], best[2])
                improved = True
        if not improved:
            break


def run_fast_mlgp(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    refine_passes: int,
) -> tuple[
    tuple[tuple[frozenset[int], ...], tuple[float, ...], tuple[float, ...]],
    dict[str, int],
]:
    """Run the bitset MLGP engine on one region.

    Returns ``((partitions, gains, areas), counters)`` where *partitions*
    are frozensets (identical to the reference engine's output) and
    *counters* carries the local ``moves``/``repairs`` totals for a single
    flush into the metrics registry.
    """
    return _run_bitset_mlgp(
        dfg, region, max_inputs, max_outputs, model, seed, refine_passes
    )


def _run_bitset_mlgp(
    dfg: DataFlowGraph,
    region: Sequence[int],
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    refine_passes: int,
    prefill=None,
) -> tuple[
    tuple[tuple[frozenset[int], ...], tuple[float, ...], tuple[float, ...]],
    dict[str, int],
]:
    """Shared bitset MLGP driver (*prefill* is the array engine's hook)."""
    ctx = _get_ctx(dfg, max_inputs, max_outputs, model)
    ctx.moves = 0
    ctx.repairs = 0
    rng = random.Random(seed)
    levels: list[_Level] = [_build_level0(region, ctx)]
    while True:
        coarser = _coarsen(levels[-1], rng, ctx)
        if coarser is None:
            break
        levels.append(coarser)

    coarsest = levels[-1]
    n_parts = len(coarsest.vertices)
    assign = list(range(n_parts))

    for li in range(len(levels) - 1, -1, -1):
        level = levels[li]
        if li < len(levels) - 1:
            assign = [assign[level.parent[v]] for v in range(len(level.vertices))]
        state = _FastPartition(ctx, level, assign, n_parts)
        _refine(state, rng, max_passes=refine_passes, prefill=prefill)
        assign = state.assign

    final = _FastPartition(ctx, levels[0], assign, n_parts)
    partitions: list[frozenset[int]] = []
    gains: list[float] = []
    areas: list[float] = []
    for p in range(n_parts):
        mask = final.part_mask[p]
        if not mask:
            continue
        gain, area, feasible = ctx.stats(mask)
        if not feasible:
            continue
        partitions.append(frozenset(_bits(mask)))
        gains.append(gain)
        areas.append(area)
    counters = {"moves": ctx.moves, "repairs": ctx.repairs}
    return (tuple(partitions), tuple(gains), tuple(areas)), counters
