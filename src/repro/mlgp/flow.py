"""System-level iterative custom-instruction generation (thesis Algorithm 4).

Top-down on-demand customization of a multi-tasking real-time system: the
utilization target guides which task, which basic blocks and which regions
get custom instructions, so no effort is spent enumerating candidates for
tasks that never become the bottleneck.

Per iteration:

1. stop if the current utilization meets the target;
2. pick the task with the maximum utilization;
3. the WCET must drop by ``delta = (U - U_target) x P_i``;
4. take the basic blocks covering (by default) 90% of the WCET path weight,
   visit their unexplored regions in descending weight, run MLGP on each and
   commit the generated custom instructions until ``delta`` is reached;
5. recompute the task's WCET and the system utilization; a task whose
   regions are exhausted is excluded from further iterations.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.graphs.program import Block, Program
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel
from repro.mlgp.mlgp import MlgpResult, mlgp_partition
from repro.parallel import parallel_map

__all__ = ["GeneratedCI", "IterationRecord", "IterativeResult", "iterative_customization", "mlgp_program_profile", "ProfileStep"]


@dataclass(frozen=True)
class GeneratedCI:
    """A committed custom instruction.

    Attributes:
        task: owning task name.
        block_index: basic block within the task's program.
        nodes: DFG node ids covered.
        gain: cycles saved per block execution.
        area: hardware area (adders).
        structural_key: isomorphism key for area sharing.
    """

    task: str
    block_index: int
    nodes: frozenset[int]
    gain: float
    area: float
    structural_key: tuple = ()


@dataclass(frozen=True)
class IterationRecord:
    """State after one iteration of Algorithm 4."""

    iteration: int
    task: str
    utilization: float
    new_cis: int
    elapsed: float


@dataclass
class IterationState:
    """Per-task mutable state of the iterative flow."""

    program: Program
    period: float
    saved_by_block: dict[int, float] = field(default_factory=dict)
    explored: set[tuple[int, int]] = field(default_factory=set)
    active: bool = True

    def block_cost(self) -> Callable[[Block], float]:
        index = {id(b): i for i, b in enumerate(self.program.basic_blocks)}

        def cost(block: Block) -> float:
            i = index[id(block)]
            return max(
                1.0,
                float(block.dfg.sw_cycles()) - self.saved_by_block.get(i, 0.0),
            )

        return cost

    def wcet(self) -> float:
        return self.program.wcet(self.block_cost())

    def utilization(self) -> float:
        return self.wcet() / self.period


@dataclass
class IterativeResult:
    """Full outcome of :func:`iterative_customization`."""

    records: list[IterationRecord]
    custom_instructions: list[GeneratedCI]
    utilization: float
    target: float

    @property
    def met_target(self) -> bool:
        return self.utilization <= self.target + 1e-9

    @property
    def total_area(self) -> float:
        """Hardware area with isomorphic custom instructions shared."""
        seen: dict[tuple, float] = {}
        extra = 0.0
        for ci in self.custom_instructions:
            if ci.structural_key and ci.structural_key in seen:
                continue
            if ci.structural_key:
                seen[ci.structural_key] = ci.area
            else:
                extra += ci.area
        return sum(seen.values()) + extra


def iterative_customization(
    programs: Sequence[Program],
    periods: Sequence[float],
    u_target: float = 1.0,
    max_inputs: int = 4,
    max_outputs: int = 2,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    path_weight_coverage: float = 0.9,
    max_iterations: int = 100,
    seed: int = 0,
    engine: str = "fast",
    use_cache: bool = True,
    workers: int | None = None,
) -> IterativeResult:
    """Run Algorithm 4 on a task set.

    Args:
        programs: the tasks' program models.
        periods: task periods aligned with *programs*.
        u_target: utilization target (1.0 = EDF schedulability boundary).
        max_inputs / max_outputs: register-port constraints.
        model: hardware cost model.
        path_weight_coverage: fraction of the WCET path weight whose blocks
            are considered for customization (thesis: "typically ... exceeds
            90%").
        max_iterations: safety cap on iterations.
        seed: MLGP seed.
        engine: MLGP engine (``"fast"`` or ``"reference"``); engines are
            bit-identical under a fixed seed.
        use_cache: memoize per-region MLGP results in :mod:`repro.cache`.
        workers: with > 1, precompute each iteration's candidate regions
            in that many parallel processes; the serial commit fold (and
            its delta early exit) is applied afterwards, so the result is
            identical to the serial flow.

    Returns:
        An :class:`IterativeResult` with the per-iteration utilization
        trajectory and every committed custom instruction.
    """
    start = time.perf_counter()
    states = [
        IterationState(program=p, period=per)
        for p, per in zip(programs, periods)
    ]
    cis: list[GeneratedCI] = []
    records: list[IterationRecord] = []
    utilization = sum(s.utilization() for s in states)

    with obs.span("mlgp.iterative", tasks=len(states), target=u_target) as top:
        for iteration in range(1, max_iterations + 1):
            if utilization <= u_target + 1e-9:
                break
            active = [s for s in states if s.active]
            if not active:
                break
            state = max(active, key=lambda s: s.utilization())
            delta = (utilization - u_target) * state.period
            with obs.span(
                "mlgp.iteration", task=state.program.name, iteration=iteration
            ):
                new_cis = _customize_task(
                    state,
                    delta,
                    max_inputs,
                    max_outputs,
                    model,
                    path_weight_coverage,
                    seed + iteration,
                    engine,
                    use_cache,
                    workers,
                )
            if new_cis:
                cis.extend(new_cis)
            else:
                state.active = False
            utilization = sum(s.utilization() for s in states)
            records.append(
                IterationRecord(
                    iteration=iteration,
                    task=state.program.name,
                    utilization=utilization,
                    new_cis=len(new_cis),
                    elapsed=time.perf_counter() - start,
                )
            )
        top.set(iterations=len(records), custom_instructions=len(cis))
    obs.inc("mlgp.iterations", len(records))
    obs.inc("mlgp.custom_instructions", len(cis))
    return IterativeResult(
        records=records,
        custom_instructions=cis,
        utilization=utilization,
        target=u_target,
    )


def _mlgp_job(
    args: tuple,
) -> MlgpResult:
    """Module-level worker so per-region MLGP jobs can be pickled."""
    dfg, region, max_inputs, max_outputs, model, seed, engine = args
    return mlgp_partition(
        dfg,
        region,
        max_inputs=max_inputs,
        max_outputs=max_outputs,
        model=model,
        seed=seed,
        engine=engine,
    )


def _customize_task(
    state: IterationState,
    delta: float,
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    coverage: float,
    seed: int,
    engine: str = "fast",
    use_cache: bool = True,
    workers: int | None = None,
) -> list[GeneratedCI]:
    """Generate custom instructions for one task until *delta* is reached."""
    program = state.program
    blocks = program.basic_blocks
    index = {id(b): i for i, b in enumerate(blocks)}
    path = program.wcet_path(state.block_cost())
    total = sum(w.cycles for w in path)
    chosen: list[tuple[int, float]] = []  # (block index, execution count)
    acc = 0.0
    for w in path:
        chosen.append((index[id(w.block)], w.count))
        acc += w.cycles
        if total > 0 and acc / total >= coverage:
            break

    # Candidate regions in the exact order the serial fold visits them.
    # With workers the whole list is precomputed in parallel (possibly
    # past the delta early-exit point — extra work, identical results);
    # without, a lazy generator keeps the original on-demand behaviour.
    work: list[tuple[int, float, int, frozenset[int] | tuple[int, ...]]] = []
    seen: set[tuple[int, int]] = set()
    for block_idx, count in chosen:
        dfg = blocks[block_idx].dfg
        for region_rank, region in enumerate(dfg.regions()):
            key = (block_idx, region_rank)
            if key in state.explored or key in seen or len(region) < 2:
                continue
            seen.add(key)
            work.append((block_idx, count, region_rank, region))
    jobs = [
        (blocks[b].dfg, region, max_inputs, max_outputs, model, seed, engine)
        for b, _count, _rank, region in work
    ]
    if workers is not None and workers > 1 and len(jobs) > 1:
        results = iter(parallel_map(_mlgp_job, jobs, workers, label="regions"))
    else:
        results = (
            mlgp_partition(
                blocks[b].dfg,
                region,
                max_inputs=max_inputs,
                max_outputs=max_outputs,
                model=model,
                seed=seed,
                engine=engine,
                use_cache=use_cache,
            )
            for b, _count, _rank, region in work
        )

    new_cis: list[GeneratedCI] = []
    gained_on_path = 0.0
    for (block_idx, count, region_rank, region), result in zip(work, results):
        dfg = blocks[block_idx].dfg
        state.explored.add((block_idx, region_rank))
        region_gain = 0.0
        for part, gain, area in zip(result.partitions, result.gains, result.areas):
            if gain <= 0:
                continue
            region_gain += gain
            new_cis.append(
                GeneratedCI(
                    task=program.name,
                    block_index=block_idx,
                    nodes=part,
                    gain=gain,
                    area=area,
                    structural_key=dfg.structural_key(part),
                )
            )
        if region_gain > 0:
            state.saved_by_block[block_idx] = (
                state.saved_by_block.get(block_idx, 0.0) + region_gain
            )
            gained_on_path += region_gain * count
        if gained_on_path >= delta:
            return new_cis
    return new_cis


@dataclass(frozen=True)
class ProfileStep:
    """Cumulative speedup/area reached at a point in analysis time."""

    elapsed: float
    speedup: float
    area: float


def mlgp_program_profile(
    program: Program,
    max_inputs: int = 4,
    max_outputs: int = 2,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    time_budget: float | None = None,
    engine: str = "fast",
    use_cache: bool = True,
    workers: int | None = None,
) -> list[ProfileStep]:
    """Average-case speedup-vs-analysis-time profile of MLGP on a program.

    Counterpart of the IS profile for thesis Figures 5.5/5.6: hot basic
    blocks (by execution-frequency weight) are processed in descending
    weight order; regions within a block in descending size; after every
    region the cumulative application speedup ``SW / HW`` and the cumulative
    hardware area are recorded.

    With ``workers`` > 1 every region is precomputed in parallel before
    the serial fold; the reported speedup/area sequence is identical, but
    ``elapsed`` reflects the parallel wall-clock and ``time_budget`` only
    truncates the fold, not the precompute.
    """
    with obs.span("mlgp.profile", program=program.name, engine=engine):
        return _mlgp_program_profile(
            program, max_inputs, max_outputs, model, seed, time_budget,
            engine, use_cache, workers,
        )


def _mlgp_program_profile(
    program: Program,
    max_inputs: int,
    max_outputs: int,
    model: HardwareCostModel,
    seed: int,
    time_budget: float | None,
    engine: str = "fast",
    use_cache: bool = True,
    workers: int | None = None,
) -> list[ProfileStep]:
    start = time.perf_counter()
    freq = program.profile()
    blocks = program.basic_blocks
    order = sorted(
        range(len(blocks)),
        key=lambda i: -(freq.get(i, 0.0) * blocks[i].dfg.sw_cycles()),
    )
    sw_total = sum(
        freq.get(i, 0.0) * blocks[i].dfg.sw_cycles() for i in range(len(blocks))
    )
    work = [
        (i, region)
        for i in order
        if freq.get(i, 0.0) > 0
        for region in blocks[i].dfg.regions()
        if len(region) >= 2
    ]
    if workers is not None and workers > 1 and len(work) > 1:
        jobs = [
            (blocks[i].dfg, region, max_inputs, max_outputs, model, seed,
             engine)
            for i, region in work
        ]
        results = iter(parallel_map(_mlgp_job, jobs, workers, label="regions"))
    else:
        results = (
            mlgp_partition(
                blocks[i].dfg,
                region,
                max_inputs=max_inputs,
                max_outputs=max_outputs,
                model=model,
                seed=seed,
                engine=engine,
                use_cache=use_cache,
            )
            for i, region in work
        )
    saved = 0.0
    area = 0.0
    steps: list[ProfileStep] = []
    for (i, _region), result in zip(work, results):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            return steps
        gain = sum(g for g in result.gains if g > 0)
        if gain <= 0:
            continue
        saved += gain * freq[i]
        area += result.total_area
        speedup = sw_total / max(1.0, sw_total - saved)
        steps.append(
            ProfileStep(
                elapsed=time.perf_counter() - start,
                speedup=speedup,
                area=area,
            )
        )
    return steps
