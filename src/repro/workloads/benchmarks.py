"""Named benchmark specifications.

Per-benchmark structural parameters.  Where the thesis publishes statistics
(Table 5.1: WCET cycles, max/avg basic-block size) we use them verbatim; the
remaining MiBench/MediaBench programs used in Chapters 3 and 4 get plausible
parameters for their domain.  Programs are generated deterministically from
the benchmark name.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import WorkloadError
from repro.graphs.program import Program
from repro.workloads.synthesis import ProgramSpec, synth_program

__all__ = ["BENCHMARKS", "benchmark_names", "get_program", "get_spec"]


#: All known benchmark specifications.  The first ten match thesis Table 5.1.
BENCHMARKS: dict[str, ProgramSpec] = {
    spec.name: spec
    for spec in (
        # --- Table 5.1 benchmarks (WCET cycles, max BB, avg BB published) ---
        ProgramSpec("adpcm", "dsp", max_bb=331, avg_bb=15, wcet_cycles=127_407),
        ProgramSpec("sha", "crypto", max_bb=487, avg_bb=38, wcet_cycles=9_163_779),
        ProgramSpec("jfdctint", "media", max_bb=107, avg_bb=19, wcet_cycles=2_217,
                    n_kernel_blocks=2, n_cold_blocks=2),
        ProgramSpec("g721decode", "dsp", max_bb=80, avg_bb=9,
                    wcet_cycles=113_295_478),
        ProgramSpec("lms", "dsp", max_bb=29, avg_bb=8, wcet_cycles=65_051),
        ProgramSpec("ndes", "crypto", max_bb=56, avg_bb=9, wcet_cycles=21_232),
        ProgramSpec("rijndael", "crypto", max_bb=239, avg_bb=24,
                    wcet_cycles=13_878_360),
        ProgramSpec("3des", "crypto", max_bb=2745, avg_bb=59,
                    wcet_cycles=106_062_791),
        ProgramSpec("aes", "crypto", max_bb=227, avg_bb=16, wcet_cycles=30_638),
        ProgramSpec("blowfish", "crypto", max_bb=457, avg_bb=22,
                    wcet_cycles=435_418_994),
        # --- Chapter 3 / 4 additional benchmarks (parameters estimated) ---
        ProgramSpec("crc32", "crypto", max_bb=24, avg_bb=8, wcet_cycles=650_000,
                    n_kernel_blocks=1, n_cold_blocks=2),
        ProgramSpec("jpeg_decoder", "media", max_bb=180, avg_bb=21,
                    wcet_cycles=28_000_000, n_kernel_blocks=4),
        ProgramSpec("jpeg_encoder", "media", max_bb=196, avg_bb=23,
                    wcet_cycles=34_000_000, n_kernel_blocks=4),
        ProgramSpec("adpcm_decoder", "dsp", max_bb=310, avg_bb=14,
                    wcet_cycles=118_000),
        ProgramSpec("adpcm_encoder", "dsp", max_bb=335, avg_bb=15,
                    wcet_cycles=133_000),
        ProgramSpec("susan", "media", max_bb=142, avg_bb=18,
                    wcet_cycles=19_500_000, n_kernel_blocks=3),
        ProgramSpec("g721_encoder", "dsp", max_bb=84, avg_bb=9,
                    wcet_cycles=121_000_000),
        ProgramSpec("g721encode", "dsp", max_bb=84, avg_bb=9,
                    wcet_cycles=121_000_000),
        ProgramSpec("compress", "control", max_bb=46, avg_bb=10,
                    wcet_cycles=8_300_000),
        ProgramSpec("edn", "dsp", max_bb=98, avg_bb=13, wcet_cycles=148_000),
        ProgramSpec("ispell", "control", max_bb=62, avg_bb=9,
                    wcet_cycles=5_400_000),
        ProgramSpec("cjpeg", "media", max_bb=196, avg_bb=23,
                    wcet_cycles=34_000_000, n_kernel_blocks=4),
        ProgramSpec("djpeg", "media", max_bb=180, avg_bb=21,
                    wcet_cycles=28_000_000, n_kernel_blocks=4),
        ProgramSpec("md5", "crypto", max_bb=412, avg_bb=31,
                    wcet_cycles=6_800_000),
        # --- Additional MiBench-style benchmarks for breadth ---
        ProgramSpec("fft", "dsp", max_bb=164, avg_bb=18,
                    wcet_cycles=3_400_000, n_kernel_blocks=3),
        ProgramSpec("viterbi", "dsp", max_bb=132, avg_bb=14,
                    wcet_cycles=2_100_000),
        ProgramSpec("gsm", "dsp", max_bb=208, avg_bb=17,
                    wcet_cycles=16_500_000),
        ProgramSpec("dijkstra", "control", max_bb=38, avg_bb=8,
                    wcet_cycles=4_700_000),
        ProgramSpec("qsort", "control", max_bb=44, avg_bb=9,
                    wcet_cycles=3_100_000),
        ProgramSpec("patricia", "control", max_bb=52, avg_bb=10,
                    wcet_cycles=2_600_000),
        ProgramSpec("stringsearch", "control", max_bb=36, avg_bb=7,
                    wcet_cycles=890_000, n_kernel_blocks=2),
        ProgramSpec("bitcount", "crypto", max_bb=48, avg_bb=9,
                    wcet_cycles=720_000, n_kernel_blocks=2),
    )
}


def benchmark_names() -> list[str]:
    """All known benchmark names, sorted."""
    return sorted(BENCHMARKS)


def get_spec(name: str) -> ProgramSpec:
    """The :class:`ProgramSpec` for a named benchmark."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()} "
            "or pass an ingested workload (a registered name, a "
            ".json/.dot/.py path, or a name under $REPRO_WORKLOAD_DIR — "
            "see 'repro ingest')"
        ) from None


def get_program(name: str, salt: int = 0) -> Program:
    """The program for a benchmark name.

    Ingested (real-code) workloads resolve first — in-memory
    registrations, path-like names and ``$REPRO_WORKLOAD_DIR`` entries
    (see :mod:`repro.workloads.registry`) — then the deterministic
    synthetic generator.  ``salt`` only varies synthetic programs; an
    ingested program is what it is.
    """
    from repro.workloads import registry

    program = registry.lookup(name)
    if program is not None:
        return program
    return _synth_cached(name, salt)


@lru_cache(maxsize=None)
def _synth_cached(name: str, salt: int = 0) -> Program:
    return synth_program(get_spec(name), salt=salt)
