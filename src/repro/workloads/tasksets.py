"""Task-set compositions from the thesis evaluation sections.

* :data:`CH3_TASK_SETS` — Table 3.1 (six sets of four MiBench/MediaBench
  tasks, Chapter 3 / DATE 2007 evaluation).
* :data:`CH4_TASK_SETS` — Table 4.1 (five sets of six to ten tasks,
  Chapter 4 evaluation).
* :data:`CH5_TASK_SETS` — Table 5.2 (five sets of four tasks, Chapter 5).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import WorkloadError
from repro.graphs.program import Program
from repro.workloads.benchmarks import get_program

__all__ = [
    "CH3_TASK_SETS",
    "CH4_TASK_SETS",
    "CH5_TASK_SETS",
    "programs_for",
]


#: Thesis Table 3.1: composition of the Chapter 3 task sets.
CH3_TASK_SETS: dict[int, tuple[str, ...]] = {
    1: ("crc32", "sha", "jpeg_decoder", "blowfish"),
    2: ("blowfish", "adpcm_decoder", "crc32", "jpeg_encoder"),
    3: ("adpcm_encoder", "blowfish", "jpeg_decoder", "crc32"),
    4: ("sha", "susan", "crc32", "g721_encoder"),
    5: ("adpcm_decoder", "jpeg_decoder", "crc32", "blowfish"),
    6: ("crc32", "sha", "blowfish", "susan"),
}

#: Thesis Table 4.1: composition of the Chapter 4 task sets.
CH4_TASK_SETS: dict[int, tuple[str, ...]] = {
    1: ("cjpeg", "adpcm", "aes", "compress", "rijndael", "ispell"),
    2: ("djpeg", "g721decode", "cjpeg", "ispell", "adpcm", "jfdctint", "aes"),
    3: ("cjpeg", "ispell", "edn", "sha", "g721decode", "djpeg", "compress", "ndes"),
    4: (
        "adpcm",
        "rijndael",
        "cjpeg",
        "ispell",
        "sha",
        "ndes",
        "djpeg",
        "compress",
        "edn",
    ),
    5: (
        "aes",
        "djpeg",
        "g721decode",
        "rijndael",
        "jfdctint",
        "cjpeg",
        "edn",
        "ispell",
        "sha",
        "ndes",
    ),
}

#: Thesis Table 5.2: composition of the Chapter 5 task sets.
CH5_TASK_SETS: dict[int, tuple[str, ...]] = {
    1: ("3des", "rijndael", "sha", "g721decode"),
    2: ("sha", "jfdctint", "rijndael", "ndes"),
    3: ("ndes", "g721decode", "rijndael", "sha"),
    4: ("aes", "3des", "adpcm", "jfdctint"),
    5: ("adpcm", "jfdctint", "rijndael", "sha"),
}


def programs_for(names: Sequence[str]) -> list[Program]:
    """Instantiate the synthetic programs for a task-set composition.

    Duplicate benchmark names within one composition get distinct program
    instances (salted generation) so their tasks are independent.
    """
    if not names:
        raise WorkloadError("a task set needs at least one benchmark")
    seen: dict[str, int] = {}
    programs: list[Program] = []
    for name in names:
        salt = seen.get(name, 0)
        seen[name] = salt + 1
        programs.append(get_program(name, salt=salt))
    return programs
