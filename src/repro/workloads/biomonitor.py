"""Wearable bio-monitoring case study (thesis Chapter 8).

The thesis customizes a processor for two wearable applications:

* **continuous vital-sign monitoring** — ECG and PPG streams are filtered,
  R-peaks / pulse peaks detected, and the Pulse Transit Time (PTT, the delay
  between the ECG R-peak and the PPG pulse arrival) is derived as a cuffless
  blood-pressure surrogate;
* **fall detection** — tri-axial accelerometer magnitude is compared
  against impact/posture thresholds.

All kernels are converted to fixed-point arithmetic before customization
(Section 8.2.1) — our program models therefore use integer ops only
(multiplies, adds, shifts for scaling).  Each kernel is a structured
program: sample-loop around a filtering/feature DFG.
"""

from __future__ import annotations

import random

from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, Loop, Program, Seq
from repro.isa.opcodes import Opcode
from repro.workloads.synthesis import OP_MIXES, synth_dfg

__all__ = ["BIOMONITOR_KERNELS", "biomonitor_program", "biomonitor_programs"]


def _fir_block(rng: random.Random, taps: int, name: str) -> Block:
    """A fixed-point FIR filter body: taps x (load, mul, acc) + scaling."""
    dfg = DataFlowGraph(name=name)
    acc = dfg.add_op(Opcode.CONST)
    for _ in range(taps):
        sample = dfg.add_op(Opcode.LOAD)
        coeff = dfg.add_op(Opcode.CONST)
        prod = dfg.add_op(Opcode.MUL, preds=[sample, coeff])
        acc = dfg.add_op(Opcode.ADD, preds=[acc, prod])
    scaled = dfg.add_op(Opcode.SHR, preds=[acc])  # fixed-point rescale
    dfg.add_op(Opcode.STORE, preds=[scaled])
    return Block(dfg)


def _peak_block(rng: random.Random, name: str) -> Block:
    """Derivative + squaring + threshold compare (Pan-Tompkins style)."""
    dfg = DataFlowGraph(name=name)
    x0 = dfg.add_op(Opcode.LOAD)
    x1 = dfg.add_op(Opcode.LOAD)
    diff = dfg.add_op(Opcode.SUB, preds=[x0, x1])
    sq = dfg.add_op(Opcode.MUL, preds=[diff, diff])
    win = dfg.add_op(Opcode.LOAD)
    acc = dfg.add_op(Opcode.ADD, preds=[sq, win])
    avg = dfg.add_op(Opcode.SHR, preds=[acc])
    thr = dfg.add_op(Opcode.CONST)
    cmp = dfg.add_op(Opcode.CMP, preds=[avg, thr])
    flag = dfg.add_op(Opcode.SELECT, preds=[cmp, avg, thr])
    dfg.add_op(Opcode.STORE, preds=[flag])
    return Block(dfg)


def _magnitude_block(rng: random.Random, name: str) -> Block:
    """Accelerometer magnitude^2 + dual threshold (fall detection)."""
    dfg = DataFlowGraph(name=name)
    parts = []
    for _axis in range(3):
        v = dfg.add_op(Opcode.LOAD)
        bias = dfg.add_op(Opcode.CONST)
        centered = dfg.add_op(Opcode.SUB, preds=[v, bias])
        parts.append(dfg.add_op(Opcode.MUL, preds=[centered, centered]))
    s = dfg.add_op(Opcode.ADD, preds=[parts[0], parts[1]])
    mag2 = dfg.add_op(Opcode.ADD, preds=[s, parts[2]])
    hi = dfg.add_op(Opcode.CONST)
    lo = dfg.add_op(Opcode.CONST)
    over = dfg.add_op(Opcode.CMP, preds=[mag2, hi])
    under = dfg.add_op(Opcode.CMP, preds=[mag2, lo])
    both = dfg.add_op(Opcode.AND, preds=[over, under])
    dfg.add_op(Opcode.STORE, preds=[both])
    return Block(dfg)


#: Kernel name -> (builder description, samples per window).
BIOMONITOR_KERNELS: dict[str, dict] = {
    "ecg_filter": {"kind": "fir", "taps": 16, "samples": 512},
    "ppg_filter": {"kind": "fir", "taps": 12, "samples": 256},
    "rpeak_detect": {"kind": "peak", "samples": 512},
    "pulse_detect": {"kind": "peak", "samples": 256},
    "ptt_compute": {"kind": "ptt", "samples": 32},
    "fall_detect": {"kind": "fall", "samples": 128},
}


def _ptt_block(rng: random.Random, name: str) -> Block:
    """PTT pairing: R-peak/pulse timestamp difference + BP regression."""
    dfg = DataFlowGraph(name=name)
    t_r = dfg.add_op(Opcode.LOAD)
    t_p = dfg.add_op(Opcode.LOAD)
    ptt = dfg.add_op(Opcode.SUB, preds=[t_p, t_r])
    a = dfg.add_op(Opcode.CONST)
    b = dfg.add_op(Opcode.CONST)
    scaled = dfg.add_op(Opcode.MUL, preds=[ptt, a])
    shifted = dfg.add_op(Opcode.SHR, preds=[scaled])
    bp = dfg.add_op(Opcode.ADD, preds=[shifted, b])
    lo = dfg.add_op(Opcode.CONST)
    hi = dfg.add_op(Opcode.CONST)
    clip_lo = dfg.add_op(Opcode.MAX, preds=[bp, lo])
    clip = dfg.add_op(Opcode.MIN, preds=[clip_lo, hi])
    dfg.add_op(Opcode.STORE, preds=[clip])
    return Block(dfg)


def biomonitor_program(name: str, salt: int = 0) -> Program:
    """Build the program model for one bio-monitoring kernel."""
    spec = BIOMONITOR_KERNELS[name]
    rng = random.Random(hash((name, salt)) & 0xFFFFFFFF)
    kind = spec["kind"]
    if kind == "fir":
        body = _fir_block(rng, spec["taps"], f"{name}:fir")
    elif kind == "peak":
        body = _peak_block(rng, f"{name}:peak")
    elif kind == "ptt":
        body = _ptt_block(rng, f"{name}:ptt")
    elif kind == "fall":
        body = _magnitude_block(rng, f"{name}:mag")
    else:  # pragma: no cover - table is closed
        raise ValueError(f"unknown kernel kind {kind!r}")
    prologue = Block(synth_dfg(rng, 6, OP_MIXES["control"], name=f"{name}:init"))
    loop = Loop(body, bound=spec["samples"])
    return Program(name, Seq([prologue, loop]))


def biomonitor_programs(salt: int = 0) -> list[Program]:
    """All bio-monitoring kernel programs."""
    return [biomonitor_program(name, salt) for name in BIOMONITOR_KERNELS]
