"""JPEG encoder case study for runtime reconfiguration (thesis Section 6.4.2).

The thesis accelerates a JPEG application on the Stretch S6000: hot loops
are extracted, CIS versions are written for each (Table 6.2 lists the
versions), and the partitioning algorithms decide which versions share
which ISEF configuration.  We model the classic JPEG encoder pipeline —
color conversion, chroma downsampling, row/column DCT, quantization,
zigzag, DC/AC Huffman coding — with per-loop version curves in Stretch-like
units (areas in arithmetic units out of a 2048-AU fabric, gains in
Kcycles) and the per-MCU loop trace.
"""

from __future__ import annotations

from repro.reconfig.model import CISVersion, HotLoop

__all__ = ["JPEG_MAX_AREA", "JPEG_RHO", "jpeg_loops", "jpeg_trace"]

#: ISEF-like fabric size for one configuration, in arithmetic units.
JPEG_MAX_AREA = 2048.0

#: Cost of one ISEF reconfiguration, in Kcycles (the thesis motivating
#: example uses 15K cycles per reconfiguration).
JPEG_RHO = 15.0


def jpeg_loops() -> list[HotLoop]:
    """The JPEG encoder hot loops with their CIS versions.

    Version 0 of each loop is software.  Areas are AUs, gains Kcycles over
    the encoding of one test image (Table 6.2-style data).
    """
    mk = CISVersion
    return [
        HotLoop(
            "color_conversion",
            (
                mk(0, 0),
                mk(257, 111),
                mk(301, 160),
                mk(1612, 563),
            ),
        ),
        HotLoop(
            "downsample",
            (
                mk(0, 0),
                mk(184, 92),
                mk(412, 178),
            ),
        ),
        HotLoop(
            "fdct_row",
            (
                mk(0, 0),
                mk(612, 230),
                mk(1041, 387),
                mk(1321, 426),
                mk(2004, 556),
            ),
        ),
        HotLoop(
            "fdct_col",
            (
                mk(0, 0),
                mk(672, 249),
                mk(1249, 493),
                mk(1612, 549),
            ),
        ),
        HotLoop(
            "quantize",
            (
                mk(0, 0),
                mk(226, 104),
                mk(498, 219),
                mk(967, 318),
            ),
        ),
        HotLoop(
            "zigzag",
            (
                mk(0, 0),
                mk(118, 41),
                mk(256, 77),
            ),
        ),
        HotLoop(
            "huffman_dc",
            (
                mk(0, 0),
                mk(322, 96),
                mk(540, 151),
            ),
        ),
        HotLoop(
            "huffman_ac",
            (
                mk(0, 0),
                mk(387, 149),
                mk(806, 287),
                mk(1190, 384),
            ),
        ),
    ]


def jpeg_trace(n_mcu: int = 24) -> list[int]:
    """The per-image loop trace of the JPEG encoder.

    Per MCU: color conversion and downsampling, then the 2D DCT (row pass,
    column pass), quantization, zigzag and Huffman coding of the DC and AC
    coefficients.  Indices match :func:`jpeg_loops` order.
    """
    cc, ds, fr, fc, qz, zz, hd, ha = range(8)
    trace: list[int] = []
    for _ in range(n_mcu):
        trace.extend([cc, ds, fr, fc, qz, zz, hd, ha])
    return trace
