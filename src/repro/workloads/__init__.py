"""Workload substrate: synthetic benchmarks, task sets, traces, case studies."""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    benchmark_names,
    get_program,
    get_spec,
)
from repro.workloads.synthesis import (
    OP_MIXES,
    ProgramSpec,
    seed_for,
    synth_dfg,
    synth_pipeline_program,
    synth_program,
)
from repro.workloads.biomonitor import (
    BIOMONITOR_KERNELS,
    biomonitor_program,
    biomonitor_programs,
)
from repro.workloads.jpeg import JPEG_MAX_AREA, JPEG_RHO, jpeg_loops, jpeg_trace
from repro.workloads.loops import synthetic_loops, synthetic_trace
from repro.workloads.registry import (
    clear_registry,
    register_program,
    registered_names,
    unregister_program,
)
from repro.workloads.sdr import SDR_MAX_AREA, SDR_MODE_A, SDR_MODE_B, sdr_loops, sdr_trace
from repro.workloads.tasksets import (
    CH3_TASK_SETS,
    CH4_TASK_SETS,
    CH5_TASK_SETS,
    programs_for,
)

__all__ = [
    "BENCHMARKS",
    "benchmark_names",
    "get_program",
    "get_spec",
    "OP_MIXES",
    "ProgramSpec",
    "seed_for",
    "synth_dfg",
    "synth_pipeline_program",
    "synth_program",
    "BIOMONITOR_KERNELS",
    "biomonitor_program",
    "biomonitor_programs",
    "JPEG_MAX_AREA",
    "JPEG_RHO",
    "jpeg_loops",
    "jpeg_trace",
    "synthetic_loops",
    "synthetic_trace",
    "clear_registry",
    "register_program",
    "registered_names",
    "unregister_program",
    "SDR_MAX_AREA",
    "SDR_MODE_A",
    "SDR_MODE_B",
    "sdr_loops",
    "sdr_trace",
    "CH3_TASK_SETS",
    "CH4_TASK_SETS",
    "CH5_TASK_SETS",
    "programs_for",
]
