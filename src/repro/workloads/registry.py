"""Registry resolving ingested (real-code) programs as first-class workloads.

Benchmark names throughout the repo resolve through
:func:`repro.workloads.get_program`.  This module extends that resolution
beyond the synthetic :data:`~repro.workloads.benchmarks.BENCHMARKS` table:

1. **In-memory registrations** — :func:`register_program` binds a
   :class:`~repro.graphs.program.Program` to its name for the current
   process (used by tests and by ``ingest_function`` callers).
2. **Path-like names** — a name containing a path separator or ending in
   ``.json`` / ``.dot`` / ``.py`` is treated as a file: a ``repro/v1``
   program or DFG artifact, a DOT graph, or a Python kernel to ingest.
3. **Workload directories** — ``$REPRO_WORKLOAD_DIR`` (or the directory
   passed to ``repro ingest --register``) is searched for
   ``<name>.json`` / ``<name>.dot`` / ``<name>.py``.

Paths and the environment variable survive into process-pool workers
(which re-resolve benchmarks by name), so service jobs on ingested
workloads behave exactly like jobs on built-in benchmarks; in-memory
registrations are per-process only.

File loads are cached on ``(path, mtime_ns, size)`` so repeated
resolution does not re-parse, while edits to the file are picked up.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import WorkloadError
from repro.graphs.program import Block, Program

__all__ = [
    "clear_registry",
    "lookup",
    "register_program",
    "registered_names",
    "unregister_program",
    "workload_dir",
]

ENV_WORKLOAD_DIR = "REPRO_WORKLOAD_DIR"

#: File suffixes the registry can load, in probe order.
_SUFFIXES = (".json", ".dot", ".py")

_registry: dict[str, Program] = {}
_file_cache: dict[str, tuple[tuple[int, int], Program]] = {}


def register_program(program: Program, name: str | None = None) -> str:
    """Bind *program* under *name* (default: its own name) for this process.

    Returns the name it was registered under.  Registered names shadow
    built-in benchmarks of the same name.
    """
    key = name or program.name
    if not key:
        raise WorkloadError("cannot register a program without a name")
    _registry[key] = program
    return key


def unregister_program(name: str) -> None:
    """Remove an in-memory registration (missing names are ignored)."""
    _registry.pop(name, None)


def registered_names() -> list[str]:
    """Names registered in this process, sorted."""
    return sorted(_registry)


def clear_registry() -> None:
    """Drop all in-memory registrations (file/dir resolution is unaffected)."""
    _registry.clear()


def workload_dir() -> Path | None:
    """The configured ingested-workload directory, if any."""
    value = os.environ.get(ENV_WORKLOAD_DIR, "").strip()
    return Path(value) if value else None


def lookup(name: str) -> Program | None:
    """Resolve *name* to an ingested program, or None if it isn't one.

    Resolution order: in-memory registry, then path-like names, then
    ``$REPRO_WORKLOAD_DIR/<name>.{json,dot,py}``.
    """
    program = _registry.get(name)
    if program is not None:
        return program
    if _is_path_like(name):
        path = Path(name)
        if not path.exists():
            raise WorkloadError(f"workload file {name!r} does not exist")
        return _load_path(path)
    base = workload_dir()
    if base is not None:
        for suffix in _SUFFIXES:
            path = base / f"{name}{suffix}"
            if path.exists():
                return _load_path(path)
    return None


def _is_path_like(name: str) -> bool:
    if "/" in name or os.sep in name:
        return True
    return name.endswith(_SUFFIXES)


def _load_path(path: Path) -> Program:
    """Load (with caching) a program from an artifact / DOT / Python file."""
    key = str(path)
    try:
        st = path.stat()
    except OSError as exc:
        raise WorkloadError(f"workload file {key!r}: cannot stat ({exc})") from exc
    stamp = (st.st_mtime_ns, st.st_size)
    cached = _file_cache.get(key)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    program = _parse_path(path)
    _file_cache[key] = (stamp, program)
    return program


def _parse_path(path: Path) -> Program:
    # Lazy imports: repro.io pulls solver modules, and repro.frontend is
    # only needed once a real-code workload is actually referenced.
    from repro import frontend

    suffix = path.suffix.lower()
    if suffix == ".json":
        from repro.io import load_json

        data = load_json(path)
        kind = data.get("kind")
        if kind == "program":
            return frontend.program_from_dict(data)
        if kind == "dfg":
            dfg = frontend.dfg_from_dict(data)
            return Program(dfg.name or path.stem, Block(dfg))
        raise WorkloadError(
            f"{path}: artifact kind {kind!r} is not a workload "
            "(expected 'program' or 'dfg')"
        )
    if suffix == ".dot":
        try:
            text = path.read_text()
        except OSError as exc:
            raise WorkloadError(f"{path}: cannot read ({exc})") from exc
        dfg = frontend.import_dot(text)
        return Program(dfg.name or path.stem, Block(dfg))
    if suffix == ".py":
        return frontend.ingest_path(path)
    raise WorkloadError(
        f"{path}: unsupported workload file type {suffix!r} "
        f"(expected one of {', '.join(_SUFFIXES)})"
    )
