"""Deterministic synthetic program synthesis.

The thesis compiles MiBench/MediaBench/WCET benchmarks with Trimaran and
feeds their DFG/CFG/profiles to the customization algorithms.  Offline, we
substitute seeded synthetic program models with matching *structure*: basic
blocks whose dataflow graphs have realistic shapes (operand locality, a mix
of arithmetic/logic/memory operations per application domain) and sizes
matching the published per-benchmark statistics (thesis Table 5.1).  All the
customization algorithms consume only this structural information, so the
synthetic models exercise identical code paths.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graphs.dfg import DataFlowGraph
from repro.graphs.program import Block, Loop, Program, Seq
from repro.isa.opcodes import Opcode, op_info

__all__ = [
    "OP_MIXES",
    "ProgramSpec",
    "seed_for",
    "synth_dfg",
    "synth_pipeline_program",
    "synth_program",
]


#: Opcode mixes per application domain.  Weights need not sum to one.
OP_MIXES: dict[str, dict[Opcode, float]] = {
    # Ciphers / hashes: bit-twiddling heavy, few multiplies.
    "crypto": {
        Opcode.XOR: 0.22,
        Opcode.AND: 0.10,
        Opcode.OR: 0.08,
        Opcode.NOT: 0.03,
        Opcode.SHL: 0.09,
        Opcode.SHR: 0.09,
        Opcode.ROTL: 0.05,
        Opcode.ROTR: 0.04,
        Opcode.ADD: 0.15,
        Opcode.SUB: 0.04,
        Opcode.CONST: 0.04,
        Opcode.LOAD: 0.05,
        Opcode.STORE: 0.02,
    },
    # Signal processing / codecs: multiply-accumulate dominated.
    "dsp": {
        Opcode.MUL: 0.13,
        Opcode.MAC: 0.06,
        Opcode.ADD: 0.25,
        Opcode.SUB: 0.10,
        Opcode.SHR: 0.08,
        Opcode.SHL: 0.05,
        Opcode.MIN: 0.02,
        Opcode.MAX: 0.02,
        Opcode.CMP: 0.05,
        Opcode.SELECT: 0.04,
        Opcode.CONST: 0.05,
        Opcode.LOAD: 0.10,
        Opcode.STORE: 0.05,
    },
    # Image / media kernels: mixed integer arithmetic with saturation.
    "media": {
        Opcode.MUL: 0.08,
        Opcode.ADD: 0.22,
        Opcode.SUB: 0.10,
        Opcode.SHR: 0.08,
        Opcode.SHL: 0.06,
        Opcode.AND: 0.06,
        Opcode.OR: 0.04,
        Opcode.MIN: 0.04,
        Opcode.MAX: 0.04,
        Opcode.CMP: 0.05,
        Opcode.SELECT: 0.05,
        Opcode.CONST: 0.04,
        Opcode.LOAD: 0.10,
        Opcode.STORE: 0.04,
    },
    # Control-dominated integer code (dictionaries, compression).
    "control": {
        Opcode.ADD: 0.20,
        Opcode.SUB: 0.10,
        Opcode.CMP: 0.12,
        Opcode.SELECT: 0.08,
        Opcode.AND: 0.08,
        Opcode.OR: 0.05,
        Opcode.XOR: 0.05,
        Opcode.SHL: 0.04,
        Opcode.SHR: 0.04,
        Opcode.CONST: 0.06,
        Opcode.LOAD: 0.12,
        Opcode.STORE: 0.06,
    },
}


@dataclass(frozen=True)
class ProgramSpec:
    """Specification of one synthetic benchmark program.

    Attributes:
        name: benchmark name.
        domain: op-mix key in :data:`OP_MIXES`.
        max_bb: size of the largest basic block in primitive instructions.
        avg_bb: mean basic-block size target.
        n_kernel_blocks: blocks inside the hot loop.
        n_cold_blocks: straight-line blocks outside the loop.
        wcet_cycles: target worst-case cycle count (sets the loop bound).
        avg_trip_ratio: average/worst-case trip-count ratio for profiling.
    """

    name: str
    domain: str
    max_bb: int
    avg_bb: int
    n_kernel_blocks: int = 3
    n_cold_blocks: int = 4
    wcet_cycles: float = 1.0e6
    avg_trip_ratio: float = 0.8

    def __post_init__(self) -> None:
        if self.domain not in OP_MIXES:
            raise WorkloadError(
                f"unknown domain {self.domain!r}; choose from {sorted(OP_MIXES)}"
            )
        if self.max_bb < 2 or self.avg_bb < 2:
            raise WorkloadError("basic-block sizes must be at least 2")


def seed_for(name: str, salt: int = 0) -> int:
    """Stable 64-bit seed derived from a benchmark name."""
    digest = hashlib.sha256(f"{name}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _weighted_choice(
    rng: random.Random, mix: Mapping[Opcode, float]
) -> Opcode:
    ops = list(mix)
    weights = [mix[o] for o in ops]
    return rng.choices(ops, weights=weights, k=1)[0]


def synth_dfg(
    rng: random.Random,
    n_ops: int,
    mix: Mapping[Opcode, float],
    name: str = "",
    locality: int = 8,
) -> DataFlowGraph:
    """Generate one basic block's dataflow graph.

    Nodes are appended in topological order.  Each operand of a new node
    connects to a recently produced value with high probability (operand
    locality window), otherwise it is an external live-in.  A fraction of
    sink nodes are marked live-out.

    Args:
        rng: seeded random source.
        n_ops: number of primitive operations.
        mix: opcode weights.
        name: DFG label.
        locality: producer window size for operand selection.
    """
    dfg = DataFlowGraph(name=name)
    producers: list[int] = []  # nodes that yield a register value
    for _ in range(n_ops):
        op = _weighted_choice(rng, mix)
        arity = op_info(op).arity
        preds: list[int] = []
        if producers:
            window = producers[-locality:]
            for _slot in range(arity):
                # 70%: consume a recent in-block value; else external input.
                if window and rng.random() < 0.7:
                    choice = rng.choice(window)
                    if choice not in preds:
                        preds.append(choice)
        node = dfg.add_op(op, preds=preds)
        if op not in (Opcode.STORE, Opcode.BRANCH):
            producers.append(node)
    # Mark ~20% of pure sinks live-out so they count as outputs.
    for node in dfg.nodes:
        if not dfg.succs(node) and rng.random() < 0.2:
            dfg.set_live_out(node)
    return dfg


def synth_program(spec: ProgramSpec, salt: int = 0) -> Program:
    """Generate the full synthetic program for *spec*.

    Structure: a few cold straight-line blocks, then a hot counted loop whose
    body holds the kernel blocks (including the largest block), then a cold
    epilogue.  The loop bound is chosen so the program WCET approximates
    ``spec.wcet_cycles``.
    """
    rng = random.Random(seed_for(spec.name, salt))
    mix = OP_MIXES[spec.domain]

    def block(size: int, label: str) -> Block:
        return Block(synth_dfg(rng, size, mix, name=f"{spec.name}:{label}"))

    def cold_size() -> int:
        return max(2, int(rng.gauss(spec.avg_bb * 0.6, spec.avg_bb * 0.2)))

    def kernel_size() -> int:
        return max(3, int(rng.gauss(spec.avg_bb * 1.5, spec.avg_bb * 0.5)))

    prologue = [block(cold_size(), f"pro{i}") for i in range(spec.n_cold_blocks // 2)]
    epilogue = [
        block(cold_size(), f"epi{i}")
        for i in range(spec.n_cold_blocks - spec.n_cold_blocks // 2)
    ]
    kernel_blocks = [block(spec.max_bb, "kern0")]
    kernel_blocks += [
        block(kernel_size(), f"kern{i}") for i in range(1, spec.n_kernel_blocks)
    ]
    body = Seq(list(kernel_blocks))
    body_cycles = sum(b.dfg.sw_cycles() for b in kernel_blocks)
    outer_cycles = sum(b.dfg.sw_cycles() for b in prologue + epilogue)
    bound = max(1, round((spec.wcet_cycles - outer_cycles) / body_cycles))
    loop = Loop(body, bound=bound, avg_trip=max(1.0, bound * spec.avg_trip_ratio))
    root = Seq([*prologue, loop, *epilogue])
    return Program(spec.name, root)


def synth_pipeline_program(
    name: str,
    n_kernels: int = 6,
    frames: int = 24,
    domain: str = "media",
    kernel_size: tuple[int, int] = (40, 160),
    inner_trip: tuple[int, int] = (8, 64),
    salt: int = 0,
) -> Program:
    """Generate a multi-kernel streaming program (JPEG-like pipeline).

    Structure: an outer per-frame loop whose body is a sequence of
    *n_kernels* inner counted loops, each wrapping one kernel basic block.
    Every inner loop is a distinct hot loop, which is exactly the shape the
    Chapter 6 extraction + partitioning flow expects (several hot loops
    alternating per frame).

    Args:
        name: program name.
        n_kernels: number of pipeline stages (inner loops).
        frames: outer-loop trip count.
        domain: op-mix key.
        kernel_size: (min, max) operations per kernel block.
        inner_trip: (min, max) inner-loop trip count.
        salt: extra seed material.
    """
    rng = random.Random(seed_for(name, salt) ^ 0x9E3779B9)
    mix = OP_MIXES[domain]
    stages = []
    for k in range(n_kernels):
        size = rng.randint(*kernel_size)
        block = Block(synth_dfg(rng, size, mix, name=f"{name}:stage{k}"))
        trip = rng.randint(*inner_trip)
        stages.append(Loop(block, bound=trip, avg_trip=float(trip)))
    prologue = Block(synth_dfg(rng, 8, OP_MIXES["control"], name=f"{name}:init"))
    frame_loop = Loop(Seq(list(stages)), bound=frames, avg_trip=float(frames))
    return Program(name, Seq([prologue, frame_loop]))
