"""Synthetic hot-loop workloads for the reconfiguration study (Ch. 6).

Mirrors the thesis Section 6.4.1 synthetic inputs: 5 to 100 hot loops, each
with 1 to 10 CIS versions, per-version performance gain between 1,000 and
10,000 time units and hardware area between 1 and 100 units, with gain
increasing in area.  The loop trace is generated as a random phased walk
(phases of a few loops repeating, like nested program phases), which yields
randomized pairwise reconfiguration counts.
"""

from __future__ import annotations

import random

from repro.reconfig.model import CISVersion, HotLoop

__all__ = ["synthetic_loops", "synthetic_trace"]


def synthetic_loops(
    n_loops: int,
    seed: int = 0,
    max_versions: int = 10,
    gain_range: tuple[int, int] = (1000, 10000),
    area_range: tuple[int, int] = (1, 100),
) -> list[HotLoop]:
    """Generate *n_loops* synthetic hot loops with monotone version curves."""
    rng = random.Random(seed)
    loops: list[HotLoop] = []
    for i in range(n_loops):
        n_versions = rng.randint(1, max_versions)
        # Monotone (area, gain) curve: sorted random draws paired up.
        areas = sorted(rng.randint(*area_range) for _ in range(n_versions))
        gains = sorted(rng.randint(*gain_range) for _ in range(n_versions))
        versions = [CISVersion(area=0.0, gain=0.0)]
        seen_area = set()
        for a, g in zip(areas, gains):
            if a in seen_area:
                continue
            seen_area.add(a)
            versions.append(CISVersion(area=float(a), gain=float(g)))
        loops.append(HotLoop(name=f"loop{i}", versions=tuple(versions)))
    return loops


def synthetic_trace(
    n_loops: int,
    seed: int = 0,
    length: int | None = None,
    phase_size: tuple[int, int] = (2, 4),
    phase_repeats: tuple[int, int] = (2, 8),
) -> list[int]:
    """Generate a phased loop trace over *n_loops* loops.

    The trace alternates through "phases": a random subset of 2-4 loops is
    cycled several times (inner-loop behaviour), then the walk moves to the
    next phase.  Every loop appears at least once.
    """
    rng = random.Random(seed ^ 0x5EED)
    target = length if length is not None else 20 * n_loops
    trace: list[int] = []
    remaining = set(range(n_loops))
    while len(trace) < target or remaining:
        size = rng.randint(*phase_size)
        pool = sorted(remaining) if remaining else list(range(n_loops))
        phase = rng.sample(pool, min(size, len(pool)))
        if len(phase) < size:
            others = [x for x in range(n_loops) if x not in phase]
            phase += rng.sample(others, min(size - len(phase), len(others)))
        remaining -= set(phase)
        for _ in range(rng.randint(*phase_repeats)):
            trace.extend(phase)
        if len(trace) > 50 * n_loops:  # safety
            break
    return trace
