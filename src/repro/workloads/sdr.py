"""Software-defined-radio mode-switching case study.

Thesis Section 2.1 motivates runtime reconfiguration with "highly dynamic
applications that can switch between different modes (e.g., runtime
selection of encryption standard) with unique custom instruction
requirements — a customized processor catering to all the scenarios will
clearly be a sub-optimal design".

This workload models such an application: a receiver that alternates
between operating modes, each exercising a different set of hot kernels
with its own CIS versions:

* **mode A (WLAN-like)** — FFT channelizer, Viterbi decoder, AES
  decryption;
* **mode B (GSM-like)** — polyphase demodulator, convolutional decoder,
  DES-like cipher.

A static design must split one fabric across both modes' instructions;
a reconfigurable design loads each mode's configuration on a mode switch,
paying ρ only at the (infrequent) switches.
"""

from __future__ import annotations

from repro.reconfig.model import CISVersion, HotLoop

__all__ = ["SDR_MAX_AREA", "sdr_loops", "sdr_trace", "SDR_MODE_A", "SDR_MODE_B"]

#: Fabric area of one configuration (arithmetic units).
SDR_MAX_AREA = 1600.0

#: Loop indices active in each operating mode.
SDR_MODE_A: tuple[int, ...] = (0, 1, 2)
SDR_MODE_B: tuple[int, ...] = (3, 4, 5)


#: Per-frame gains (Kcycles) and areas (AU) of each kernel's versions.
_KERNELS: tuple[tuple[str, tuple[tuple[float, float], ...]], ...] = (
    # --- mode A ---
    ("fft_channelizer", ((420.0, 1.8), (780.0, 3.1))),
    ("viterbi_decoder", ((510.0, 2.4), (940.0, 4.2))),
    ("aes_decrypt", ((380.0, 1.5), (720.0, 2.6))),
    # --- mode B ---
    ("polyphase_demod", ((450.0, 2.0), (820.0, 3.4))),
    ("conv_decoder", ((480.0, 2.1), (880.0, 3.8))),
    ("des_cipher", ((350.0, 1.3), (680.0, 2.4))),
)


def sdr_loops(frames_per_dwell: int = 40, dwells: int = 6) -> list[HotLoop]:
    """Hot kernels of the two operating modes with their CIS versions.

    Version gains are *totals* over the run described by
    :func:`sdr_trace` with the same parameters: per-frame gain times the
    number of frames the kernel's mode is active.  Version curves are
    deliberately area-hungry so one fabric configuration cannot hold both
    modes' best versions (the thesis's motivating tension).
    """
    mode_a_dwells = (dwells + 1) // 2
    mode_b_dwells = dwells // 2
    loops: list[HotLoop] = []
    for idx, (name, versions) in enumerate(_KERNELS):
        frames = frames_per_dwell * (
            mode_a_dwells if idx in SDR_MODE_A else mode_b_dwells
        )
        curve = [CISVersion(0.0, 0.0)]
        for area, gain_per_frame in versions:
            curve.append(CISVersion(area, gain_per_frame * frames))
        loops.append(HotLoop(name, tuple(curve)))
    return loops


def sdr_trace(
    frames_per_dwell: int = 40, dwells: int = 6
) -> list[int]:
    """Loop trace of the mode-switching receiver.

    The radio stays in one mode for *frames_per_dwell* frames (each frame
    runs the mode's three kernels), then switches to the other mode;
    *dwells* mode periods total.  Mode switches are rare relative to
    frames, which is exactly when reconfiguration wins.
    """
    trace: list[int] = []
    for dwell in range(dwells):
        kernels = SDR_MODE_A if dwell % 2 == 0 else SDR_MODE_B
        for _ in range(frames_per_dwell):
            trace.extend(kernels)
    return trace
