"""Hot-loop extraction: from a program model to the Chapter 6 inputs.

Implements the front half of the thesis system design flow (Figure 6.3):

* **hot loop detection** — loops whose body consumes at least a fraction
  (default 1%) of the program's profile cycles;
* **CIS version generation** — per hot loop, candidate enumeration +
  greedy-prefix selection over the loop body's basic blocks produces the
  (area, gain) version curve, with gains scaled by the loop's total
  execution count (so version gains are program-level cycle savings, as
  the partitioning algorithms expect);
* **loop trace generation** — the execution sequence of hot loops per
  program run, derived from the syntax tree (loops inside loops repeat
  according to the enclosing average trip counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enumeration.mimo import enumerate_connected
from repro.enumeration.patterns import make_candidate
from repro.graphs.program import Block, IfElse, Loop, Program, Seq
from repro.isa.costmodel import DEFAULT_COST_MODEL, HardwareCostModel
from repro.reconfig.model import CISVersion, HotLoop
from repro.selection.greedy import select_greedy

__all__ = ["ExtractedLoops", "extract_hot_loops"]


@dataclass(frozen=True)
class ExtractedLoops:
    """Chapter 6 inputs derived from one program.

    Attributes:
        loops: hot loops with generated CIS version curves.
        trace: per-run execution sequence of hot-loop indices.
        coverage: fraction of profile cycles inside the hot loops.
    """

    loops: tuple[HotLoop, ...]
    trace: tuple[int, ...]
    coverage: float


def _collect_loops(node, enclosing_trips: float, acc: list[tuple[Loop, float]]):
    if isinstance(node, Loop):
        acc.append((node, enclosing_trips))
        _collect_loops(node.body, enclosing_trips * float(node.avg_trip), acc)
    elif isinstance(node, Seq):
        for child in node.children:
            _collect_loops(child, enclosing_trips, acc)
    elif isinstance(node, IfElse):
        _collect_loops(node.then_branch, enclosing_trips * node.taken_prob, acc)
        _collect_loops(
            node.else_branch, enclosing_trips * (1.0 - node.taken_prob), acc
        )


def _own_blocks(node) -> list[Block]:
    """Blocks directly under *node*, not nested inside inner loops."""
    if isinstance(node, Block):
        return [node]
    if isinstance(node, Seq):
        out: list[Block] = []
        for child in node.children:
            out.extend(_own_blocks(child))
        return out
    if isinstance(node, IfElse):
        return _own_blocks(node.then_branch) + _own_blocks(node.else_branch)
    return []  # a nested Loop owns its blocks itself


def _loop_body_cycles(loop: Loop) -> float:
    return sum(b.dfg.sw_cycles() for b in _own_blocks(loop.body))


def _versions_for_loop(
    loop: Loop,
    executions: float,
    max_inputs: int,
    max_outputs: int,
    max_versions: int,
    model: HardwareCostModel,
) -> tuple[CISVersion, ...]:
    """Generate the (area, gain) version curve of one loop body."""
    candidates = []
    for block in _own_blocks(loop.body):
        node_sets = enumerate_connected(
            block.dfg,
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            max_size=10,
            max_candidates=400,
        )
        for nodes in node_sets:
            cand = make_candidate(
                block.dfg, nodes, frequency=executions, model=model
            )
            if cand.total_gain > 0:
                candidates.append(cand)
    # Candidates from different blocks never conflict; block_index is 0 for
    # all of them here, so conflicts within a block are still honoured.
    order = select_greedy(candidates, float("inf"))
    versions = [CISVersion(area=0.0, gain=0.0)]
    area = gain = 0.0
    for i in order:
        area += candidates[i].area
        gain += candidates[i].total_gain
        versions.append(CISVersion(area=area, gain=gain))
    if len(versions) > max_versions:
        # Keep the software version, then an even spread ending at the best.
        idx = {0, len(versions) - 1}
        for k in range(1, max_versions - 1):
            idx.add(round(k * (len(versions) - 1) / (max_versions - 1)))
        versions = [versions[i] for i in sorted(idx)]
    return tuple(versions)


def _emit_trace(node, hot_ids: dict[int, int], acc: list[int], depth_cap: int):
    """Walk the syntax tree emitting hot-loop visits (bounded unrolling)."""
    if isinstance(node, Loop):
        reps = min(int(round(node.avg_trip)), depth_cap)
        body_has_hot = any(
            id(lp) in hot_ids for lp, _ in _loops_below(node.body)
        )
        if id(node) in hot_ids:
            if body_has_hot:
                for _ in range(max(1, reps)):
                    acc.append(hot_ids[id(node)])
                    _emit_trace(node.body, hot_ids, acc, depth_cap)
            else:
                acc.append(hot_ids[id(node)])
        else:
            for _ in range(max(1, min(reps, 3)) if body_has_hot else 0):
                _emit_trace(node.body, hot_ids, acc, depth_cap)
    elif isinstance(node, Seq):
        for child in node.children:
            _emit_trace(child, hot_ids, acc, depth_cap)
    elif isinstance(node, IfElse):
        branch = node.then_branch if node.taken_prob >= 0.5 else node.else_branch
        _emit_trace(branch, hot_ids, acc, depth_cap)


def _loops_below(node) -> list[tuple[Loop, float]]:
    acc: list[tuple[Loop, float]] = []
    _collect_loops(node, 1.0, acc)
    return acc


def extract_hot_loops(
    program: Program,
    hot_threshold: float = 0.01,
    max_inputs: int = 4,
    max_outputs: int = 2,
    max_versions: int = 8,
    trace_unroll_cap: int = 8,
    model: HardwareCostModel = DEFAULT_COST_MODEL,
) -> ExtractedLoops:
    """Derive hot loops, CIS versions and a loop trace from *program*.

    Args:
        program: the application's program model.
        hot_threshold: minimum fraction of profile cycles for a loop.
        max_inputs / max_outputs: register-port constraints.
        max_versions: version-curve length cap per loop.
        trace_unroll_cap: bound on per-loop repetitions emitted into the
            trace (keeps traces compact, like the thesis's compressed
            traces).
        model: hardware cost model.

    Returns:
        An :class:`ExtractedLoops` bundle.
    """
    total = program.avg_cycles()
    all_loops = _loops_below(program.root)
    hot: list[tuple[Loop, float, float]] = []  # (loop, executions, cycles)
    for loop, enclosing in all_loops:
        executions = enclosing * float(loop.avg_trip)
        cycles = executions * _loop_body_cycles(loop)
        if total > 0 and cycles / total >= hot_threshold:
            hot.append((loop, executions, cycles))
    hot.sort(key=lambda x: -x[2])

    loops: list[HotLoop] = []
    hot_ids: dict[int, int] = {}
    covered = 0.0
    for rank, (loop, executions, cycles) in enumerate(hot):
        versions = _versions_for_loop(
            loop, executions, max_inputs, max_outputs, max_versions, model
        )
        loops.append(HotLoop(name=f"{program.name}:loop{rank}", versions=versions))
        hot_ids[id(loop)] = rank
        covered += cycles

    trace: list[int] = []
    _emit_trace(program.root, hot_ids, trace, trace_unroll_cap)
    coverage = covered / total if total > 0 else 0.0
    return ExtractedLoops(
        loops=tuple(loops), trace=tuple(trace), coverage=min(1.0, coverage)
    )
