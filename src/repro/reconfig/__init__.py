"""Runtime reconfiguration of custom instructions (thesis Chapter 6)."""

from repro.reconfig.exhaustive import exhaustive_partition, set_partitions
from repro.reconfig.extract import ExtractedLoops, extract_hot_loops
from repro.reconfig.greedy import greedy_partition
from repro.reconfig.iterative import PartitionSolution, iterative_partition
from repro.reconfig.kwaypart import edge_cut, kway_partition
from repro.reconfig.model import (
    CISVersion,
    HotLoop,
    Partition,
    count_reconfigurations,
    net_gain,
)
from repro.reconfig.rcg import build_rcg
from repro.reconfig.spatial import spatial_select
from repro.reconfig.variants import (
    iterative_partition_partial,
    partial_net_gain,
    temporal_only_partition,
)

__all__ = [
    "ExtractedLoops",
    "extract_hot_loops",
    "iterative_partition_partial",
    "partial_net_gain",
    "temporal_only_partition",
    "exhaustive_partition",
    "set_partitions",
    "greedy_partition",
    "PartitionSolution",
    "iterative_partition",
    "edge_cut",
    "kway_partition",
    "CISVersion",
    "HotLoop",
    "Partition",
    "count_reconfigurations",
    "net_gain",
    "build_rcg",
    "spatial_select",
]
