"""Reconfiguration Cost Graph (RCG) construction (thesis Section 6.3.3).

Vertices are the hot loops selected for hardware acceleration; software
loops are elided from the loop trace first, so control transfers passing
*through* a software loop connect its hardware neighbours directly (thesis
Figure 6.6).  The edge weight between loops ``l`` and ``l'`` is the number
of direct transitions between them in the elided trace — exactly the number
of reconfigurations paid if the two loops land in different configurations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["build_rcg"]


def build_rcg(
    trace: Sequence[int], hardware: Iterable[int]
) -> dict[tuple[int, int], int]:
    """Build the RCG edge-weight map.

    Args:
        trace: execution sequence of loop indices.
        hardware: loop indices implemented in hardware (RCG vertices).

    Returns:
        Mapping from undirected edge ``(min, max)`` to transition count.
        Self-transitions (same loop twice in a row) carry no cost and are
        omitted.
    """
    hw = set(hardware)
    edges: dict[tuple[int, int], int] = {}
    prev: int | None = None
    for loop in trace:
        if loop not in hw:
            continue
        if prev is not None and loop != prev:
            key = (min(prev, loop), max(prev, loop))
            edges[key] = edges.get(key, 0) + 1
        prev = loop
    return edges
