"""Data model for runtime reconfiguration of custom instructions (Ch. 6).

An application is reduced to its *hot loops* (loops consuming >= ~1% of
execution time, found by profiling).  Each hot loop ``l_i`` carries multiple
*custom-instruction-set versions* ``l_{i,j}`` trading hardware area for
performance gain; version 0 is always the pure-software version
``(area=0, gain=0)``.  The control flow among hot loops is a *loop trace*
(the execution sequence of the loops).  A solution assigns each loop one
version and each hardware-accelerated loop one *configuration*; the CFU
fabric holds one configuration at a time and swapping configurations costs
``rho`` cycles.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["CISVersion", "HotLoop", "Partition", "count_reconfigurations", "net_gain"]


@dataclass(frozen=True)
class CISVersion:
    """One custom-instruction-set version of a hot loop."""

    area: float
    gain: float

    def __post_init__(self) -> None:
        if self.area < 0 or self.gain < 0:
            raise ReproError("area and gain must be non-negative")


@dataclass(frozen=True)
class HotLoop:
    """A hot loop with its CIS version trade-off curve.

    Attributes:
        name: loop label.
        versions: version 0 must be the software version (0 area, 0 gain);
            later versions typically increase in both area and gain.
    """

    name: str
    versions: tuple[CISVersion, ...]

    def __post_init__(self) -> None:
        if not self.versions:
            raise ReproError(f"loop {self.name!r} needs at least one version")
        v0 = self.versions[0]
        if v0.area != 0 or v0.gain != 0:
            raise ReproError(
                f"loop {self.name!r}: version 0 must be the software version"
            )

    @property
    def n_versions(self) -> int:
        return len(self.versions)

    @property
    def best_version(self) -> int:
        """Index of the highest-gain version."""
        return max(range(len(self.versions)), key=lambda j: self.versions[j].gain)


@dataclass(frozen=True)
class Partition:
    """A complete solution of the partitioning problem.

    Attributes:
        selection: version index per loop (0 = software).
        config_of: configuration id per loop; loops with version 0 are
            ignored (use any value).  Configuration ids need not be dense.
    """

    selection: tuple[int, ...]
    config_of: tuple[int, ...]

    def hardware_loops(self) -> list[int]:
        return [i for i, j in enumerate(self.selection) if j != 0]

    def n_configurations(self) -> int:
        return len({self.config_of[i] for i in self.hardware_loops()})


def count_reconfigurations(
    trace: Sequence[int],
    config_of: Mapping[int, int] | Sequence[int],
    hardware: Iterable[int],
) -> int:
    """Number of fabric reconfigurations over a loop trace.

    Software loops are transparent (they do not touch the fabric).  The
    first configuration load is not counted, matching the edge-cut model of
    the reconfiguration-cost graph (thesis Figure 6.4 computes the cost of
    the three-configuration solution as the sum of crossing-edge weights).

    Args:
        trace: execution sequence of loop indices.
        config_of: configuration id per loop index.
        hardware: loop indices implemented in hardware.

    Returns:
        The count of configuration switches.
    """
    hw = set(hardware)
    current: int | None = None
    switches = 0
    for loop in trace:
        if loop not in hw:
            continue
        cfg = config_of[loop]
        if current is not None and cfg != current:
            switches += 1
        current = cfg
    return switches


def net_gain(
    loops: Sequence[HotLoop],
    partition: Partition,
    trace: Sequence[int],
    rho: float,
) -> float:
    """Net performance gain of a solution (thesis Equation 6.1).

    ``sum of selected version gains - (#reconfigurations) x rho``.
    """
    if len(partition.selection) != len(loops):
        raise ReproError("selection length must match loop count")
    gain = sum(
        loops[i].versions[j].gain for i, j in enumerate(partition.selection)
    )
    hw = partition.hardware_loops()
    r = count_reconfigurations(trace, partition.config_of, hw)
    return gain - r * rho
