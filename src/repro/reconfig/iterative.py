"""Iterative temporal/spatial partitioning (thesis Algorithm 6).

For every candidate configuration count ``k`` from 1 to the number of hot
loops:

1. **global spatial partition** — optimally select CIS versions under a
   *continuous* budget ``k x MaxA`` (ignoring reconfiguration cost); this
   upper-bounds what ``k`` configurations could achieve;
2. **temporal partition** — build the reconfiguration cost graph and
   k-way-partition the selected loops (vertex weight = selected version
   area) so the reconfiguration cost is minimized and parts are roughly
   ``MaxA``-sized; also compute an alternative partition ``P'`` of *all*
   loops with unit weights that ignores the phase-1 selection (better when
   reconfiguration cost dominates);
3. **local spatial partition** — within each configuration, re-select
   versions under the real per-configuration budget ``MaxA``.

The candidate solutions are evaluated by net gain (gain minus
reconfiguration cost over the loop trace) and the best across all ``k`` is
returned.  Early exit: if some solution already gives every loop its best
version, larger ``k`` cannot help.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import cache, obs
from repro.errors import ReproError
from repro.parallel import parallel_map
from repro.reconfig.kwaypart import kway_partition
from repro.reconfig.model import HotLoop, Partition, net_gain
from repro.reconfig.rcg import build_rcg
from repro.reconfig.spatial import spatial_select

__all__ = ["PartitionSolution", "iterative_partition"]


@dataclass(frozen=True)
class PartitionSolution:
    """A complete partitioning solution with its evaluation."""

    partition: Partition
    gain: float
    n_configurations: int


def _cap_versions(loops: Sequence[HotLoop], max_area: float) -> list[HotLoop]:
    """Drop versions that cannot fit a single configuration."""
    capped = []
    for lp in loops:
        versions = tuple(v for v in lp.versions if v.area <= max_area)
        capped.append(HotLoop(name=lp.name, versions=versions))
    return capped


def _local_spatial(
    loops: Sequence[HotLoop],
    members: Sequence[int],
    base_selection: list[int],
    max_area: float,
) -> None:
    """Re-select versions of *members* under ``max_area``, in place."""
    if not members:
        return
    sub = [loops[i] for i in members]
    sel, _gain = spatial_select(sub, max_area)
    for i, j in zip(members, sel):
        base_selection[i] = j


def _evaluate(
    loops: Sequence[HotLoop],
    selection: list[int],
    config_of: list[int],
    trace: Sequence[int],
    rho: float,
) -> PartitionSolution:
    part = Partition(selection=tuple(selection), config_of=tuple(config_of))
    return PartitionSolution(
        partition=part,
        gain=net_gain(loops, part, trace, rho),
        n_configurations=part.n_configurations(),
    )


def _prune_to_software(
    loops: Sequence[HotLoop],
    selection: list[int],
    config_of: list[int],
    trace: Sequence[int],
    rho: float,
) -> None:
    """Demote loops whose reconfiguration contribution exceeds their gain.

    Phases 1-3 ignore the interaction between version selection and
    reconfiguration cost; this greedy descent repeatedly moves the loop
    with the largest net benefit to software.  Removing loop *i* from the
    hardware trace deletes its boundary switches and may create new ones
    between its neighbours; the exact removal delta for every loop is
    computed in one sweep per pass.
    """
    while True:
        hw = {i for i, j in enumerate(selection) if j != 0}
        if not hw:
            return
        # Run-compressed hardware trace: per-run removal deltas sum to the
        # exact whole-loop removal delta (neighbouring runs always belong
        # to other loops).
        elided: list[int] = []
        for x in trace:
            if x in hw and (not elided or elided[-1] != x):
                elided.append(x)
        delta: dict[int, int] = {i: 0 for i in hw}
        m = len(elided)
        for pos, cur in enumerate(elided):
            prev_cfg = config_of[elided[pos - 1]] if pos > 0 else None
            next_cfg = config_of[elided[pos + 1]] if pos + 1 < m else None
            cur_cfg = config_of[cur]
            removed = 0
            if prev_cfg is not None and prev_cfg != cur_cfg:
                removed += 1
            if next_cfg is not None and next_cfg != cur_cfg:
                removed += 1
            created = (
                1
                if prev_cfg is not None
                and next_cfg is not None
                and prev_cfg != next_cfg
                else 0
            )
            delta[cur] += removed - created
        best_i, best_benefit = -1, 0.0
        for i in hw:
            benefit = delta[i] * rho - loops[i].versions[selection[i]].gain
            if benefit > best_benefit + 1e-9:
                best_i, best_benefit = i, benefit
        if best_i < 0:
            return
        selection[best_i] = 0


def _solutions_for_k(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
    seed: int,
    prune: bool,
    k: int,
    engine: str = "fast",
    use_cache: bool = True,
) -> list[PartitionSolution]:
    """Candidate solutions for one configuration count *k* (phases 1-3).

    Returned in the exact order the serial fold compares them (each base
    candidate followed by its pruned variant when it differs), so folding
    the lists for ascending ``k`` reproduces the sequential search.

    Per-k results are memoized behind a content key (loops + trace digest
    + parameters); the key is engine-independent because the k-way engines
    are bit-identical under a fixed seed.
    """
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.hot_loops_digest(loops, trace),
            kind="ksolutions",
            max_area=max_area,
            rho=rho,
            seed=seed,
            prune=prune,
            k=k,
        )
        cached = cache.fetch_ksolutions(key)
        if cached is not None:
            return [
                PartitionSolution(
                    partition=Partition(
                        selection=tuple(c["selection"]),
                        config_of=tuple(c["config_of"]),
                    ),
                    gain=c["gain"],
                    n_configurations=c["n_configurations"],
                )
                for c in cached
            ]
    with obs.span("reconfig.k", k=k, loops=len(loops), engine=engine):
        solutions = _solutions_for_k_body(
            loops, trace, max_area, rho, seed, prune, k, engine
        )
    if key is not None:
        cache.store_ksolutions(
            key,
            [
                {
                    "selection": list(s.partition.selection),
                    "config_of": list(s.partition.config_of),
                    "gain": s.gain,
                    "n_configurations": s.n_configurations,
                }
                for s in solutions
            ],
        )
    return solutions


def _solutions_for_k_body(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
    seed: int,
    prune: bool,
    k: int,
    engine: str,
) -> list[PartitionSolution]:
    n = len(loops)
    # Phase 1: global spatial partitioning over continuous area k*MaxA.
    selection, _ = spatial_select(loops, k * max_area)
    hw = [i for i, j in enumerate(selection) if j != 0]

    candidates: list[tuple[list[int], list[int]]] = []
    # Partition P: selected loops, weights = selected version areas.
    if hw:
        rcg = build_rcg(trace, hw)
        local = {v: i for i, v in enumerate(hw)}
        edges = {
            (local[u], local[v]): float(w) for (u, v), w in rcg.items()
        }
        weights = [loops[i].versions[selection[i]].area for i in hw]
        assign = kway_partition(
            len(hw), edges, weights, k=min(k, len(hw)), seed=seed,
            engine=engine,
        )
        config_of = [0] * n
        for i, part_id in zip(hw, assign):
            config_of[i] = part_id
        candidates.append((list(selection), config_of))
    # Partition P': all loops, unit weights, selection ignored.
    rcg_all = build_rcg(trace, range(n))
    assign_all = kway_partition(
        n, {k2: float(v) for k2, v in rcg_all.items()}, None, k=k, seed=seed,
        engine=engine,
    )
    candidates.append(([0] * n, list(assign_all)))

    solutions: list[PartitionSolution] = []
    for base_selection, config_of in candidates:
        final_selection = list(base_selection)
        parts: dict[int, list[int]] = {}
        pool = (
            [i for i in range(n) if base_selection[i] != 0]
            if any(base_selection)
            else range(n)
        )
        for i in pool:
            parts.setdefault(config_of[i], []).append(i)
        # Phase 3: local spatial partitioning per configuration.
        for members in parts.values():
            _local_spatial(loops, members, final_selection, max_area)
        solutions.append(_evaluate(loops, final_selection, config_of, trace, rho))
        if not prune:
            continue
        # Post-pass: demote loops whose reconfiguration cost outweighs
        # their gain (keeps whichever variant evaluates better).
        pruned_selection = list(final_selection)
        _prune_to_software(loops, pruned_selection, config_of, trace, rho)
        if pruned_selection != final_selection:
            solutions.append(
                _evaluate(loops, pruned_selection, config_of, trace, rho)
            )
    return solutions


def _k_job(
    args: tuple[
        tuple[HotLoop, ...],
        tuple[int, ...],
        float,
        float,
        int,
        bool,
        int,
        str,
        bool,
    ],
) -> list[PartitionSolution]:
    """Module-level worker so per-k jobs can be pickled."""
    loops, trace, max_area, rho, seed, prune, k, engine, use_cache = args
    return _solutions_for_k(
        loops, trace, max_area, rho, seed, prune, k, engine, use_cache
    )


def iterative_partition(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
    seed: int = 0,
    max_k: int | None = None,
    prune: bool = True,
    workers: int | None = None,
    use_cache: bool = True,
    engine: str = "fast",
) -> PartitionSolution:
    """Run Algorithm 6 and return the best solution found.

    Args:
        loops: hot loops with CIS versions.
        trace: loop trace (execution sequence of loop indices).
        max_area: hardware area of one configuration (``MaxA``).
        rho: cost of one reconfiguration.
        seed: RNG seed for the k-way partitioner.
        max_k: optional cap on the number of configurations explored
            (defaults to the loop count).
        prune: run the software-demotion post-pass on each candidate
            solution (ablation switch; True in normal use).
        workers: with > 1, evaluate the per-k candidate solutions in that
            many parallel processes; the sequential ascending-k fold (and
            its early exits) is applied to the results afterwards, so the
            returned solution is identical to the serial search.
        use_cache: memoize the final result and every per-k candidate list
            behind content keys (loops + trace digest + parameters) in
            :mod:`repro.cache`.
        engine: k-way partitioner engine (``"fast"`` or ``"reference"``);
            engines are bit-identical, so cache keys do not include it.

    Returns:
        The best :class:`PartitionSolution`.
    """
    if engine not in ("fast", "reference"):
        raise ReproError(f"unknown engine {engine!r}")
    n = len(loops)
    if n == 0:
        raise ReproError("need at least one hot loop")
    key = None
    if use_cache:
        key = cache.artifact_key(
            cache.hot_loops_digest(loops, trace),
            kind="iterative_partition",
            max_area=max_area,
            rho=rho,
            seed=seed,
            max_k=max_k,
            prune=prune,
        )
        cached = cache.fetch_partition(key)
        if cached is not None:
            return PartitionSolution(
                partition=Partition(
                    selection=tuple(cached["selection"]),
                    config_of=tuple(cached["config_of"]),
                ),
                gain=cached["gain"],
                n_configurations=cached["n_configurations"],
            )
    loops = _cap_versions(loops, max_area)
    limit = min(n, max_k) if max_k is not None else n

    jobs = [
        (tuple(loops), tuple(trace), max_area, rho, seed, prune, k, engine,
         use_cache)
        for k in range(1, limit + 1)
    ]
    with obs.span("reconfig.partition", loops=n, max_k=limit, engine=engine):
        if workers is not None and workers > 1 and limit > 1:
            per_k = parallel_map(
                _k_job, jobs, workers, label="partition candidates"
            )
        else:
            # Lazy generator: the serial path keeps skipping the k values the
            # early exits below would never have computed.
            per_k = (_k_job(j) for j in jobs)

        best: PartitionSolution | None = None
        best_total_gain = sum(
            lp.versions[lp.best_version].gain for lp in loops
        )
        for solutions in per_k:
            for sol in solutions:
                if best is None or sol.gain > best.gain:
                    best = sol
            # Early exit: every loop already at its best version.
            if best is not None and all(
                best.partition.selection[i] == loops[i].best_version
                for i in range(n)
            ):
                break
            if best is not None and best.gain >= best_total_gain:
                break
        assert best is not None
    if key is not None:
        cache.store_partition(
            key,
            {
                "selection": list(best.partition.selection),
                "config_of": list(best.partition.config_of),
                "gain": best.gain,
                "n_configurations": best.n_configurations,
            },
        )
    return best
