"""Architecture variants: temporal-only and partial reconfiguration.

The thesis's taxonomy (Section 2.1, Figure 2.2) spans four extensible-
processor architectures.  Chapter 6 targets (c) temporal+spatial
reconfiguration; this module adds the two neighbouring points so their
cost/benefit can be compared on the same workloads:

* **temporal-only** (Figure 2.2(b), e.g. PRISC/OneChip) — a configuration
  holds exactly one custom-instruction set; no spatial sharing, so any
  alternation between two hardware loops pays a reconfiguration;
* **partial reconfiguration** (Figure 2.2(d), e.g. DISC/XiRisc) — only the
  incoming configuration's area is (re)loaded, so the per-switch cost is
  proportional to the loaded area instead of a fabric-wide constant.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.reconfig.iterative import (
    PartitionSolution,
    _evaluate,
    _prune_to_software,
    iterative_partition,
)
from repro.reconfig.model import HotLoop, Partition

__all__ = [
    "temporal_only_partition",
    "partial_net_gain",
    "iterative_partition_partial",
]


def temporal_only_partition(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
) -> PartitionSolution:
    """Best solution when every configuration holds exactly one loop.

    Each loop picks its best version fitting the fabric; the software-
    demotion pass then drops loops whose alternation cost exceeds their
    gain (with one loop per configuration, every transition between two
    distinct hardware loops reconfigures).
    """
    n = len(loops)
    selection = [0] * n
    for i, lp in enumerate(loops):
        best_j, best_gain = 0, 0.0
        for j, v in enumerate(lp.versions):
            if j == 0 or v.area > max_area:
                continue
            if v.gain > best_gain:
                best_j, best_gain = j, v.gain
        selection[i] = best_j
    config_of = list(range(n))  # one configuration per loop
    _prune_to_software(loops, selection, config_of, trace, rho)
    return _evaluate(loops, selection, config_of, trace, rho)


def partial_net_gain(
    loops: Sequence[HotLoop],
    partition: Partition,
    trace: Sequence[int],
    rho_per_area: float,
) -> float:
    """Net gain under the partial-reconfiguration cost model.

    Each switch into configuration ``c`` costs
    ``rho_per_area x (area of c's resident versions)``; the first load is
    free (edge-cut convention, matching the constant-cost model).
    """
    gain = sum(
        loops[i].versions[j].gain for i, j in enumerate(partition.selection)
    )
    hw = set(partition.hardware_loops())
    config_area: dict[int, float] = {}
    for i in hw:
        cfg = partition.config_of[i]
        config_area[cfg] = (
            config_area.get(cfg, 0.0)
            + loops[i].versions[partition.selection[i]].area
        )
    cost = 0.0
    current: int | None = None
    for loop in trace:
        if loop not in hw:
            continue
        cfg = partition.config_of[loop]
        if current is not None and cfg != current:
            cost += rho_per_area * config_area[cfg]
        current = cfg
    return gain - cost


def iterative_partition_partial(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho_per_area: float,
    seed: int = 0,
) -> tuple[PartitionSolution, float]:
    """Partitioning for a partially reconfigurable fabric.

    Runs the constant-cost iterative partitioner at several effective
    per-switch costs (fractions of ``rho_per_area x max_area``) and keeps
    the candidate that scores best under the exact partial-cost model.

    Returns:
        (the chosen solution, its partial-model net gain).
    """
    best_sol: PartitionSolution | None = None
    best_gain = float("-inf")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        effective_rho = rho_per_area * max_area * fraction
        sol = iterative_partition(loops, trace, max_area, effective_rho, seed=seed)
        gain = partial_net_gain(loops, sol.partition, trace, rho_per_area)
        if gain > best_gain:
            best_sol, best_gain = sol, gain
    assert best_sol is not None
    return best_sol, best_gain
