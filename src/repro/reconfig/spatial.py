"""Spatial partitioning DP (thesis Algorithm 7).

Selects one CIS version per loop maximizing total gain under an area budget
— recursion (6.3)::

    G_i(A) = max_{j : area_{i,j} <= A} ( gain_{i,j} + G_{i-1}(A - area_{i,j}) )

Pseudo-polynomial over a quantized area axis, vectorized; the step is the
GCD of the version areas and the budget (coarsened beyond ``max_steps``
with areas rounded up, so the budget always holds).

Used twice by the iterative partitioning algorithm: *globally* with budget
``k x MaxA`` (phase 1) and *locally* per configuration with budget ``MaxA``
(phase 3).
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd

import numpy as np

from repro.errors import ReproError
from repro.reconfig.model import HotLoop

__all__ = ["spatial_select"]


def _quantum(areas: list[float], budget: float, scale: int, max_steps: int) -> int:
    ints = [round(a * scale) for a in areas if a > 0]
    ints.append(max(1, round(budget * scale)))
    g = 0
    for v in ints:
        g = gcd(g, v)
    g = max(1, g)
    cap = int(round(budget * scale))
    if cap // g > max_steps:
        g = -(-cap // max_steps)
    return g


def spatial_select(
    loops: Sequence[HotLoop],
    area_budget: float,
    scale: int = 100,
    max_steps: int = 20000,
) -> tuple[list[int], float]:
    """Optimal version selection under an area budget.

    Args:
        loops: the hot loops with CIS versions.
        area_budget: available hardware area.
        scale: fixed-point scale for fractional areas.
        max_steps: DP table width cap.

    Returns:
        (version index per loop, total gain).
    """
    if area_budget < 0:
        raise ReproError("area budget must be non-negative")
    areas = [v.area for lp in loops for v in lp.versions]
    q = _quantum(areas, max(area_budget, 1e-9), scale, max_steps)
    cap = int(round(area_budget * scale)) // q

    def steps(a: float) -> int:
        return -(-round(a * scale) // q)  # ceil: never understate area

    neg_inf = -np.inf
    best = np.zeros(cap + 1)
    picks: list[np.ndarray] = []
    for lp in loops:
        new = np.full(cap + 1, neg_inf)
        pick = np.zeros(cap + 1, dtype=np.int32)
        for j, v in enumerate(lp.versions):
            w = steps(v.area)
            if w > cap:
                continue
            cand = np.full(cap + 1, neg_inf)
            cand[w:] = best[: cap + 1 - w] + v.gain
            better = cand > new
            new[better] = cand[better]
            pick[better] = j
        best = new
        picks.append(pick)

    a = int(np.argmax(best))
    selection = [0] * len(loops)
    for i in range(len(loops) - 1, -1, -1):
        j = int(picks[i][a])
        selection[i] = j
        a -= steps(loops[i].versions[j].area)
    total = sum(lp.versions[j].gain for lp, j in zip(loops, selection))
    return selection, total
