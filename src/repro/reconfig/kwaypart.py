"""Self-contained multilevel k-way weighted graph partitioner.

A METIS-style partitioner (Karypis & Kumar [55, 56]) used for the temporal
partitioning of hot loops into configurations (thesis Section 6.3.3):

* **coarsening** — heavy-edge matching collapses the graph until it is
  small;
* **initial partitioning** — longest-processing-time balanced assignment of
  the coarse vertices to ``k`` parts;
* **uncoarsening + refinement** — Kernighan-Lin-style boundary moves that
  reduce the edge-cut while keeping parts within a balance tolerance.

Objective: minimize the summed weight of edges whose endpoints are in
different parts, with part vertex-weights roughly equal.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro import obs

__all__ = ["kway_partition", "edge_cut"]


def edge_cut(
    edges: Mapping[tuple[int, int], float], assign: Sequence[int]
) -> float:
    """Summed weight of edges crossing part boundaries."""
    return sum(w for (u, v), w in edges.items() if assign[u] != assign[v])


def _heavy_edge_matching(
    n: int,
    adj: list[dict[int, float]],
    weights: list[float],
    rng: random.Random,
) -> list[list[int]] | None:
    order = list(range(n))
    rng.shuffle(order)
    matched = [False] * n
    groups: list[list[int]] = []
    merged = False
    for u in order:
        if matched[u]:
            continue
        matched[u] = True
        best_v, best_w = -1, -1.0
        for v, w in adj[u].items():
            if not matched[v] and w > best_w:
                best_v, best_w = v, w
        if best_v >= 0:
            matched[best_v] = True
            groups.append([u, best_v])
            merged = True
        else:
            groups.append([u])
    return groups if merged else None


def _refine(
    n: int,
    adj: list[dict[int, float]],
    weights: list[float],
    assign: list[int],
    k: int,
    max_part_weight: float,
    rng: random.Random,
    counters: dict[str, int],
    passes: int = 4,
) -> None:
    part_weight = [0.0] * k
    for v in range(n):
        part_weight[assign[v]] += weights[v]
    for _ in range(passes):
        counters["kl_passes"] += 1
        improved = False
        order = list(range(n))
        rng.shuffle(order)
        for v in order:
            src = assign[v]
            # Connectivity of v to each part.
            link: dict[int, float] = {}
            for u, w in adj[v].items():
                link[assign[u]] = link.get(assign[u], 0.0) + w
            internal = link.get(src, 0.0)
            best_dest, best_gain = -1, 0.0
            for dest, w in link.items():
                if dest == src:
                    continue
                if part_weight[dest] + weights[v] > max_part_weight:
                    continue
                gain = w - internal
                if gain > best_gain + 1e-12:
                    best_dest, best_gain = dest, gain
            if best_dest >= 0:
                assign[v] = best_dest
                part_weight[src] -= weights[v]
                part_weight[best_dest] += weights[v]
                improved = True
                counters["moves"] += 1
        if not improved:
            break


def _refine_fast(
    n: int,
    adj: list[dict[int, float]],
    weights: list[float],
    assign: list[int],
    k: int,
    max_part_weight: float,
    rng: random.Random,
    counters: dict[str, int],
    passes: int = 4,
) -> None:
    """Incremental KL refinement, bit-identical to :func:`_refine`.

    The speedup comes from skipping *clean* vertices.  A vertex is clean
    once it has been evaluated without producing a move AND no candidate
    destination with positive gain was rejected only by the part-weight
    cap.  Its link dict (keyed by neighbour parts) cannot change until a
    neighbour moves, gains do not depend on part weights, and no blocked
    positive-gain destination exists that a weight shift could unlock —
    so re-evaluating it is a provable no-op that draws no RNG.  Every
    move dirties the mover and its neighbours.  For vertices that are
    evaluated, the link dict is rebuilt in the same ``adj`` iteration
    order as the reference, so every float accumulation is identical.
    """
    part_weight = [0.0] * k
    for v in range(n):
        part_weight[assign[v]] += weights[v]
    clean = bytearray(n)
    for _ in range(passes):
        counters["kl_passes"] += 1
        improved = False
        order = list(range(n))
        rng.shuffle(order)
        for v in order:
            if clean[v]:
                continue
            src = assign[v]
            link: dict[int, float] = {}
            for u, w in adj[v].items():
                pu = assign[u]
                link[pu] = link.get(pu, 0.0) + w
            internal = link.get(src, 0.0)
            wv = weights[v]
            best_dest, best_gain = -1, 0.0
            blocked = False
            for dest, w in link.items():
                if dest == src:
                    continue
                gain = w - internal
                if part_weight[dest] + wv > max_part_weight:
                    if gain > 1e-12:
                        blocked = True
                    continue
                if gain > best_gain + 1e-12:
                    best_dest, best_gain = dest, gain
            if best_dest >= 0:
                assign[v] = best_dest
                part_weight[src] -= wv
                part_weight[best_dest] += wv
                improved = True
                counters["moves"] += 1
                for u in adj[v]:
                    clean[u] = 0
            elif not blocked:
                clean[v] = 1
        if not improved:
            break


def kway_partition(
    n: int,
    edges: Mapping[tuple[int, int], float],
    weights: Sequence[float] | None = None,
    k: int = 2,
    imbalance: float = 0.3,
    seed: int = 0,
    engine: str = "fast",
) -> list[int]:
    """Partition ``n`` vertices into ``k`` parts minimizing the edge-cut.

    Args:
        n: vertex count (ids 0..n-1).
        edges: undirected edge weights keyed by ``(min, max)`` pairs.
        weights: vertex weights (default: all 1).
        k: number of parts.
        imbalance: allowed part-weight slack over the perfect balance
            (``max part weight <= (1+imbalance) x total / k``, floored at
            the largest single vertex).
        seed: RNG seed for matching/refinement order.
        engine: ``"fast"`` (incremental KL with clean-vertex skipping)
            or ``"reference"`` (original implementation).  Both produce
            bit-identical assignments under the same seed.

    Returns:
        Part id (0..k-1) per vertex.  For ``k >= n`` every vertex gets its
        own part.
    """
    if engine not in ("fast", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if n == 0:
        return []
    w = [1.0] * n if weights is None else list(weights)
    if k >= n:
        return list(range(n))
    if k <= 1:
        return [0] * n
    rng = random.Random(seed)
    counters = {"kl_passes": 0, "moves": 0}

    # --- Coarsening -----------------------------------------------------
    levels: list[tuple[list[dict[int, float]], list[float], list[int]]] = []
    cur_adj: list[dict[int, float]] = [dict() for _ in range(n)]
    for (u, v), wt in edges.items():
        if u == v:
            continue
        cur_adj[u][v] = cur_adj[u].get(v, 0.0) + wt
        cur_adj[v][u] = cur_adj[v].get(u, 0.0) + wt
    cur_w = list(w)
    maps: list[list[int]] = []  # fine vertex -> coarse vertex, per level
    while len(cur_w) > max(4 * k, 16):
        groups = _heavy_edge_matching(len(cur_w), cur_adj, cur_w, rng)
        if groups is None:
            break
        coarse_of = [0] * len(cur_w)
        for ci, g in enumerate(groups):
            for m in g:
                coarse_of[m] = ci
        new_w = [sum(cur_w[m] for m in g) for g in groups]
        new_adj: list[dict[int, float]] = [dict() for _ in groups]
        for u in range(len(cur_w)):
            cu = coarse_of[u]
            for v, wt in cur_adj[u].items():
                cv = coarse_of[v]
                if cu != cv and u < v:
                    new_adj[cu][cv] = new_adj[cu].get(cv, 0.0) + wt
                    new_adj[cv][cu] = new_adj[cv].get(cu, 0.0) + wt
        levels.append((cur_adj, cur_w, coarse_of))
        maps.append(coarse_of)
        cur_adj, cur_w = new_adj, new_w

    # --- Initial partitioning (connectivity-aware greedy growth) --------
    m = len(cur_w)
    total = sum(w)
    max_part_weight = max(
        (1.0 + imbalance) * total / k,
        max(cur_w) if cur_w else 1.0,
    )
    assign = [-1] * m
    part_weight = [0.0] * k
    for v in sorted(range(m), key=lambda x: -cur_w[x]):
        link = [0.0] * k
        for u, wt in cur_adj[v].items():
            if assign[u] >= 0:
                link[assign[u]] += wt
        # Prefer the most-connected part that still has room; fall back to
        # the lightest part when none fits.
        open_parts = [
            p for p in range(k) if part_weight[p] + cur_w[v] <= max_part_weight
        ]
        if open_parts:
            p = max(open_parts, key=lambda x: (link[x], -part_weight[x]))
        else:
            p = min(range(k), key=lambda x: part_weight[x])
        assign[v] = p
        part_weight[p] += cur_w[v]
    if engine == "fast":
        _refine_fast(
            m, cur_adj, cur_w, assign, k, max_part_weight, rng, counters
        )
    else:
        _refine(m, cur_adj, cur_w, assign, k, max_part_weight, rng, counters)

    # --- Uncoarsening ----------------------------------------------------
    for fine_adj, fine_w, coarse_of in reversed(levels):
        assign = [assign[coarse_of[v]] for v in range(len(fine_w))]
        if engine == "fast":
            _refine_fast(
                len(fine_w),
                fine_adj,
                fine_w,
                assign,
                k,
                max_part_weight,
                rng,
                counters,
            )
        else:
            _refine(
                len(fine_w),
                fine_adj,
                fine_w,
                assign,
                k,
                max_part_weight,
                rng,
                counters,
            )
    obs.inc("kway.kl_passes", counters["kl_passes"])
    obs.inc("kway.moves", counters["moves"])
    return assign
