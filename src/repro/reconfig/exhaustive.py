"""Exhaustive partitioning baseline (thesis Section 6.4).

Enumerates *every* set partition of the hot loops into configurations
(restricted-growth-string enumeration, after Kreher & Stinson [63]); for
each partition the optimal per-configuration version selection is computed
(memoized per loop subset) and the net gain evaluated over the trace.
Super-exponential: the number of partitions is the Bell number ``B(N)``,
so it "fails to return any solution with more than 12 hot loops" (thesis
Figure 6.8).

Note on optimality: following the thesis procedure, the per-configuration
selection maximizes *gain* under the area budget; it never demotes a loop
to software purely to save reconfiguration cost.  The search is therefore
exact over the thesis's solution space, but the iterative algorithm's
software-demotion post-pass can occasionally beat it on reconfiguration-
dominated inputs.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

from repro.errors import SolverError
from repro.reconfig.iterative import PartitionSolution, _evaluate
from repro.reconfig.model import HotLoop
from repro.reconfig.spatial import spatial_select

__all__ = ["exhaustive_partition", "set_partitions"]


def set_partitions(n: int) -> Iterator[list[int]]:
    """Yield every partition of ``{0..n-1}`` as a restricted growth string.

    Element ``i`` of the yielded list is the block id of item *i*; block ids
    are dense and first-occurrence ordered.
    """
    if n == 0:
        yield []
        return
    rgs = [0] * n
    maxes = [0] * n
    while True:
        yield list(rgs)
        # Advance to the next restricted growth string.
        i = n - 1
        while i > 0 and rgs[i] == maxes[i - 1] + 1:
            i -= 1
        if i == 0:
            return
        rgs[i] += 1
        maxes[i] = max(maxes[i - 1], rgs[i])
        for j in range(i + 1, n):
            rgs[j] = 0
            maxes[j] = maxes[i]


def exhaustive_partition(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
    time_budget: float | None = None,
) -> PartitionSolution:
    """Optimal partitioning by full set-partition enumeration.

    Args:
        loops: hot loops with CIS versions.
        trace: loop trace.
        max_area: hardware area of one configuration.
        rho: cost of one reconfiguration.
        time_budget: optional wall-clock cutoff in seconds.

    Returns:
        The optimal :class:`PartitionSolution`.

    Raises:
        SolverError: when the time budget expires before any solution is
            evaluated.
    """
    n = len(loops)
    start = time.perf_counter()
    best: PartitionSolution | None = None
    # Memoized optimal local selection per loop subset.
    memo: dict[frozenset[int], list[int]] = {}

    def local_selection(members: frozenset[int]) -> list[int]:
        cached = memo.get(members)
        if cached is None:
            sub = [loops[i] for i in sorted(members)]
            cached, _ = spatial_select(sub, max_area)
            memo[members] = cached
        return cached

    for rgs in set_partitions(n):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            if best is None:
                raise SolverError(
                    "exhaustive search exceeded its time budget with no solution"
                )
            return best
        blocks: dict[int, list[int]] = {}
        for i, b in enumerate(rgs):
            blocks.setdefault(b, []).append(i)
        selection = [0] * n
        for members in blocks.values():
            sel = local_selection(frozenset(members))
            for i, j in zip(sorted(members), sel):
                selection[i] = j
        sol = _evaluate(loops, selection, rgs, trace, rho)
        if best is None or sol.gain > best.gain:
            best = sol
    assert best is not None
    return best
