"""Greedy partitioning baseline (thesis Algorithm 8).

Builds the solution one configuration at a time: repeatedly pick the CIS
version with the maximum *expected* positive gain — its raw gain minus the
additional reconfiguration cost its loop would incur if appended to the
configuration under construction — until no version helps; then freeze the
configuration and start a new one.  Terminates when even an empty new
configuration cannot host a profitable version.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.reconfig.iterative import PartitionSolution, _evaluate
from repro.reconfig.model import HotLoop, count_reconfigurations

__all__ = ["greedy_partition"]


def _extra_reconfig_cost(
    trace: Sequence[int],
    config_of: dict[int, int],
    hw: set[int],
    loop: int,
    cfg: int,
    rho: float,
) -> float:
    """Reconfiguration cost increase of adding *loop* to configuration *cfg*."""
    before = count_reconfigurations(trace, config_of, hw)
    trial = dict(config_of)
    trial[loop] = cfg
    after = count_reconfigurations(trace, trial, hw | {loop})
    return (after - before) * rho


def greedy_partition(
    loops: Sequence[HotLoop],
    trace: Sequence[int],
    max_area: float,
    rho: float,
) -> PartitionSolution:
    """Run Algorithm 8.

    Args:
        loops: hot loops with CIS versions.
        trace: loop trace.
        max_area: hardware area of one configuration.
        rho: cost of one reconfiguration.

    Returns:
        The greedy :class:`PartitionSolution`.
    """
    n = len(loops)
    selection = [0] * n
    config_of: dict[int, int] = {}
    hw: set[int] = set()
    current_cfg = 0
    current_area_left = max_area
    current_empty = True
    unselected = set(range(n))

    while True:
        best: tuple[float, int, int] | None = None  # (expected gain, loop, version)
        for i in sorted(unselected):
            extra = _extra_reconfig_cost(
                trace, config_of, hw, i, current_cfg, rho
            )
            for j, v in enumerate(loops[i].versions):
                if j == 0 or v.area > current_area_left:
                    continue
                expected = v.gain - extra
                if expected > 0 and (best is None or expected > best[0]):
                    best = (expected, i, j)
        if best is None:
            if not current_empty:
                # Freeze the configuration and start a new, empty one.
                current_cfg += 1
                current_area_left = max_area
                current_empty = True
                continue
            break
        _, i, j = best
        selection[i] = j
        config_of[i] = current_cfg
        hw.add(i)
        unselected.discard(i)
        current_area_left -= loops[i].versions[j].area
        current_empty = False

    full_config = [config_of.get(i, 0) for i in range(n)]
    return _evaluate(loops, selection, full_config, trace, rho)
