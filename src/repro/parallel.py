"""Shared process-pool fan-out with an explicit serial fallback.

Both the identification flow (:func:`repro.core.flow.build_tasks`) and the
reconfiguration searches fan independent jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The pool is treated as
*infrastructure that may break*, never as a correctness dependency:

* Sandboxed environments (CI runners, seccomp jails) often forbid spawning
  processes — pool creation fails with ``OSError``/``PermissionError``.
* A worker can die mid-map (OOM kill, segfault), which surfaces as
  :class:`~concurrent.futures.BrokenExecutor` on the affected futures.
* A pool can wedge; an optional per-map ``timeout=`` bounds the wait.

Jobs that did not finish in the pool are retried serially in the parent,
so a *broken* pool always yields the same results a serial run would
produce.  A *timed-out* map is different: ``timeout=`` is an overall
deadline for the whole call — pending futures are cancelled, the serial
retry runs only inside the remaining budget, and when the budget is
exhausted with jobs still unfinished a :class:`TimeoutError` is raised (a
timeout that silently doubles is not a timeout).  Exceptions raised by the
job function itself are *not* swallowed — they propagate exactly as they
would serially.

Every degradation is logged once per observability epoch
(:func:`repro.obs.warn_once`; re-armed by :func:`repro.obs.reset`) and
counted on the metrics registry regardless of logging:
``parallel.pool_failures``, ``parallel.timeouts``,
``parallel.serial_retries``, ``parallel.retry_deadline_exceeded``.

When tracing is enabled in the parent (:func:`repro.obs.enable_tracing`),
pool jobs are wrapped so each worker captures its own spans and metric
deltas; the parent merges them back into one trace/metrics view
(:func:`repro.obs.merge_payload`).

Setting the ``REPRO_NO_PROCESS_POOL`` environment variable (to anything
non-empty) forces every map serial — the chaos-test knob for running the
suite with process pools forbidden.
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Callable, Iterable, Sequence
from functools import partial
from typing import Any, TypeVar

from repro import obs

__all__ = ["parallel_map", "pool_allowed"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment kill switch: force serial execution (chaos testing / known
#: pool-hostile environments).
_ENV_NO_POOL = "REPRO_NO_PROCESS_POOL"

#: Warn-once key for the degradation warning (one log line per obs epoch).
_WARN_KEY = "parallel.degraded"

logger = logging.getLogger("repro.parallel")

_MISSING = object()


def _warn_once(exc: BaseException, label: str, retried: int = 0) -> None:
    if not obs.warn_once(_WARN_KEY):
        return
    if retried:
        logger.warning(
            "process pool failed mid-map (%s: %s); retrying %d unfinished "
            "%s serially — the requested --workers fan-out is degraded",
            type(exc).__name__,
            exc,
            retried,
            label,
        )
    else:
        logger.warning(
            "process pool unavailable (%s: %s); running %s serially — "
            "the requested --workers fan-out is ignored",
            type(exc).__name__,
            exc,
            label,
        )


def _reset_warning() -> None:
    """Re-arm the per-epoch degradation warning (test hook)."""
    obs.rearm_warning(_WARN_KEY)


def pool_allowed() -> bool:
    """Is a process pool worth attempting in this environment?

    The single policy shared by :func:`parallel_map` and the job server
    (:class:`repro.service.server.JobServer`): ``False`` on single-core
    hosts (no parallelism to gain) and when the ``REPRO_NO_PROCESS_POOL``
    kill switch is set.  A ``True`` answer is *advisory* — pool creation
    can still fail at runtime and callers must degrade, not crash.
    """
    return (os.cpu_count() or 1) > 1 and not os.environ.get(_ENV_NO_POOL)


def _captured_job(fn: Callable[[_T], _R], job: _T) -> tuple[_R, dict]:
    """Pool-worker wrapper: run *fn* and ship the worker's observability
    payload (spans + metric deltas) back with the result."""
    obs.begin_child_capture()
    result = fn(job)
    return result, obs.end_child_capture()


def parallel_map(
    fn: Callable[[_T], _R],
    jobs: Iterable[_T],
    workers: int | None,
    label: str = "jobs",
    timeout: float | None = None,
) -> list[_R]:
    """Map a picklable *fn* over *jobs*, optionally across processes.

    Args:
        fn: module-level (picklable) worker function.
        jobs: job inputs; results come back in job order.
        workers: with > 1 and more than one job, fan out over that many
            processes; otherwise run serially.  A single-core host
            (``os.cpu_count() <= 1``) also runs serially — spinning up a
            pool there costs fork/pickle overhead with no parallelism to
            gain — and, like ``workers=1``, does so silently: declining
            a fan-out that cannot help is not a degradation, so no
            warning is emitted.  If the pool cannot be
            created (``OSError``/``PermissionError``, e.g. a sandbox
            without process support) or breaks mid-map
            (:class:`~concurrent.futures.BrokenExecutor`: a worker was
            OOM-killed or segfaulted), the jobs that did not complete in
            the pool are retried serially and a warning (once per obs
            epoch) names the failure.  Exceptions raised by *fn* itself
            propagate.
        label: what the jobs are, for the degradation warning.
        timeout: optional overall deadline (seconds) for the whole call.
            On expiry the still-pending futures are cancelled, the pool is
            abandoned without waiting on it, and unfinished jobs are
            retried serially **within the remaining budget**; if the
            budget runs out with jobs still unfinished, a
            :class:`TimeoutError` is raised naming the shortfall.

    Returns:
        ``[fn(j) for j in jobs]``.
    """
    job_list: Sequence[Any] = list(jobs)
    n = len(job_list)
    deadline = time.monotonic() + timeout if timeout is not None else None
    use_pool = workers is not None and workers > 1 and n > 1 and pool_allowed()
    obs.inc("parallel.maps")
    results: list[Any] = [_MISSING] * n
    timed_out = False
    if use_pool:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait

        capture = obs.tracing_enabled()
        task: Callable[[Any], Any] = (
            partial(_captured_job, fn) if capture else fn
        )
        pool = None
        failure: BaseException | None = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = [pool.submit(task, job) for job in job_list]
            done, pending = wait(futures, timeout=timeout)
            timed_out = bool(pending)
            # Cancel what never started: a cancelled queued future will not
            # run behind our back while the parent retries it serially.
            for fut in pending:
                fut.cancel()
            for i, fut in enumerate(futures):
                if fut not in done:
                    continue
                exc = fut.exception()
                if exc is None:
                    if capture:
                        results[i], payload = fut.result()
                        obs.merge_payload(payload)
                    else:
                        results[i] = fut.result()
                elif isinstance(exc, (BrokenExecutor, OSError, PermissionError)):
                    # Infrastructure failure on this job; retry it serially.
                    failure = exc
                else:
                    # fn itself raised: a genuine error, same as serial.
                    raise exc
        except (BrokenExecutor, OSError, PermissionError) as exc:
            failure = exc
        finally:
            if pool is not None:
                # Never block on a broken or timed-out pool; leftover
                # workers exit on their own once their job ends.
                pool.shutdown(wait=False, cancel_futures=True)
        unfinished = sum(1 for r in results if r is _MISSING)
        if failure is not None:
            obs.inc("parallel.pool_failures")
            obs.inc("parallel.serial_retries", unfinished)
            _warn_once(failure, label, retried=unfinished)
        elif timed_out:
            obs.inc("parallel.timeouts")
            obs.inc("parallel.serial_retries", unfinished)
            _warn_once(
                TimeoutError(f"parallel map exceeded timeout={timeout}s"),
                label,
                retried=unfinished,
            )
    for i, r in enumerate(results):
        if r is _MISSING:
            if deadline is not None and time.monotonic() >= deadline:
                left = sum(1 for r2 in results if r2 is _MISSING)
                obs.inc("parallel.retry_deadline_exceeded")
                raise TimeoutError(
                    f"{label}: timeout={timeout}s exhausted with {left} of "
                    f"{n} jobs unfinished"
                )
            results[i] = fn(job_list[i])
    return results
