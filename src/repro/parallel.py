"""Shared process-pool fan-out with an explicit serial fallback.

Both the identification flow (:func:`repro.core.flow.build_tasks`) and the
reconfiguration searches fan independent jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The pool is treated as
*infrastructure that may break*, never as a correctness dependency:

* Sandboxed environments (CI runners, seccomp jails) often forbid spawning
  processes — pool creation fails with ``OSError``/``PermissionError``.
* A worker can die mid-map (OOM kill, segfault), which surfaces as
  :class:`~concurrent.futures.BrokenExecutor` on the affected futures.
* A pool can wedge; an optional per-map ``timeout=`` bounds the wait.

In every case the jobs that did not finish in the pool are retried
serially in the parent, so the batch always completes with the same
results a serial run would produce.  Silently ignoring the user's
``--workers`` request makes perf investigations confusing, so each
degradation is logged once per process, naming the failure.  Exceptions
raised by the job function itself are *not* swallowed — they propagate
exactly as they would serially.

Setting the ``REPRO_NO_PROCESS_POOL`` environment variable (to anything
non-empty) forces every map serial — the chaos-test knob for running the
suite with process pools forbidden.
"""

from __future__ import annotations

import logging
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

__all__ = ["parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment kill switch: force serial execution (chaos testing / known
#: pool-hostile environments).
_ENV_NO_POOL = "REPRO_NO_PROCESS_POOL"

logger = logging.getLogger("repro.parallel")

_warned = False
_warn_lock = threading.Lock()

_MISSING = object()


def _warn_once(exc: BaseException, label: str, retried: int = 0) -> None:
    global _warned
    with _warn_lock:
        if _warned:
            return
        _warned = True
    if retried:
        logger.warning(
            "process pool failed mid-map (%s: %s); retrying %d unfinished "
            "%s serially — the requested --workers fan-out is degraded",
            type(exc).__name__,
            exc,
            retried,
            label,
        )
    else:
        logger.warning(
            "process pool unavailable (%s: %s); running %s serially — "
            "the requested --workers fan-out is ignored",
            type(exc).__name__,
            exc,
            label,
        )


def _reset_warning() -> None:
    """Re-arm the one-shot degradation warning (test hook)."""
    global _warned
    with _warn_lock:
        _warned = False


def parallel_map(
    fn: Callable[[_T], _R],
    jobs: Iterable[_T],
    workers: int | None,
    label: str = "jobs",
    timeout: float | None = None,
) -> list[_R]:
    """Map a picklable *fn* over *jobs*, optionally across processes.

    Args:
        fn: module-level (picklable) worker function.
        jobs: job inputs; results come back in job order.
        workers: with > 1 and more than one job, fan out over that many
            processes; otherwise run serially.  If the pool cannot be
            created (``OSError``/``PermissionError``, e.g. a sandbox
            without process support) or breaks mid-map
            (:class:`~concurrent.futures.BrokenExecutor`: a worker was
            OOM-killed or segfaulted), the jobs that did not complete in
            the pool are retried serially and a one-shot warning names
            the failure.  Exceptions raised by *fn* itself propagate.
        label: what the jobs are, for the degradation warning.
        timeout: optional overall deadline (seconds) for the parallel
            attempt; on expiry the remaining jobs degrade to serial
            execution in the parent (the pool is abandoned without
            waiting on it).

    Returns:
        ``[fn(j) for j in jobs]``.
    """
    job_list: Sequence[Any] = list(jobs)
    n = len(job_list)
    use_pool = (
        workers is not None
        and workers > 1
        and n > 1
        and not os.environ.get(_ENV_NO_POOL)
    )
    results: list[Any] = [_MISSING] * n
    if use_pool:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait

        pool = None
        failure: BaseException | None = None
        timed_out = False
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = [pool.submit(fn, job) for job in job_list]
            done, pending = wait(futures, timeout=timeout)
            timed_out = bool(pending)
            for i, fut in enumerate(futures):
                if fut not in done:
                    continue
                exc = fut.exception()
                if exc is None:
                    results[i] = fut.result()
                elif isinstance(exc, (BrokenExecutor, OSError, PermissionError)):
                    # Infrastructure failure on this job; retry it serially.
                    failure = exc
                else:
                    # fn itself raised: a genuine error, same as serial.
                    raise exc
        except (BrokenExecutor, OSError, PermissionError) as exc:
            failure = exc
        finally:
            if pool is not None:
                # Never block on a broken or timed-out pool; leftover
                # workers exit on their own once their job ends.
                pool.shutdown(wait=False, cancel_futures=True)
        unfinished = sum(1 for r in results if r is _MISSING)
        if failure is not None:
            _warn_once(failure, label, retried=unfinished)
        elif timed_out:
            _warn_once(
                TimeoutError(f"parallel map exceeded timeout={timeout}s"),
                label,
                retried=unfinished,
            )
    for i, r in enumerate(results):
        if r is _MISSING:
            results[i] = fn(job_list[i])
    return results
