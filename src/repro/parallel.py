"""Shared process-pool fan-out with an explicit serial fallback.

Both the identification flow (:func:`repro.core.flow.build_tasks`) and the
reconfiguration searches fan independent jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Sandboxed environments
(CI runners, seccomp jails) often forbid spawning processes; in that case
the work must still complete, just serially — but silently ignoring the
user's ``--workers`` request makes perf investigations confusing, so the
degradation is logged once per process, naming the swallowed exception.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

__all__ = ["parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

logger = logging.getLogger("repro.parallel")

_warned = False
_warn_lock = threading.Lock()


def _warn_once(exc: BaseException, label: str) -> None:
    global _warned
    with _warn_lock:
        if _warned:
            return
        _warned = True
    logger.warning(
        "process pool unavailable (%s: %s); running %s serially — "
        "the requested --workers fan-out is ignored",
        type(exc).__name__,
        exc,
        label,
    )


def parallel_map(
    fn: Callable[[_T], _R],
    jobs: Iterable[_T],
    workers: int | None,
    label: str = "jobs",
) -> list[_R]:
    """Map a picklable *fn* over *jobs*, optionally across processes.

    Args:
        fn: module-level (picklable) worker function.
        jobs: job inputs; results come back in job order.
        workers: with > 1 and more than one job, fan out over that many
            processes; otherwise run serially.  If the pool cannot be
            created or used (``OSError``/``PermissionError``, e.g. a
            sandbox without process support) the map degrades to serial
            and a one-shot warning names the swallowed exception.
        label: what the jobs are, for the degradation warning.

    Returns:
        ``[fn(j) for j in jobs]``.
    """
    job_list: Sequence[Any] = list(jobs)
    if workers is not None and workers > 1 and len(job_list) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, job_list))
        except (OSError, PermissionError) as exc:
            _warn_once(exc, label)
    return [fn(j) for j in job_list]
